"""Service type definitions: profiles, worker pools, endpoint handlers."""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.memory.profile import WorkloadProfile

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.instance import ServiceContext

#: A handler is a generator function: it receives the service context and
#: yields simulation events (from ``ctx.compute`` / ``ctx.call`` / raw
#: resources); its return value becomes the RPC response payload.
Handler = t.Callable[["ServiceContext"], t.Generator]


@dataclasses.dataclass(frozen=True)
class Endpoint:
    """One named operation a service exposes."""

    name: str
    handler: Handler

    def __post_init__(self) -> None:
        if not callable(self.handler):
            raise ConfigurationError(
                f"endpoint {self.name!r}: handler must be callable")


class ServiceSpec:
    """A service type, instantiable into any number of replicas.

    ``workers`` is the replica's thread-pool width — how many requests one
    instance processes concurrently (Tomcat worker threads, in TeaStore
    terms).  ``shared_factory``, when given, builds per-instance shared
    state (locks, caches) handlers reach via ``ctx.shared``.
    """

    def __init__(self, name: str, profile: WorkloadProfile,
                 workers: int = 8,
                 queue_capacity: int | None = None,
                 shared_factory: t.Callable[["t.Any"], object] | None = None):
        if workers < 1:
            raise ConfigurationError(
                f"service {name!r}: workers must be >= 1")
        if queue_capacity is not None and queue_capacity < 1:
            raise ConfigurationError(
                f"service {name!r}: queue capacity must be >= 1")
        self.name = name
        self.profile = profile
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.shared_factory = shared_factory
        self._endpoints: dict[str, Endpoint] = {}
        self._fallbacks: dict[str, object] = {}

    @property
    def endpoints(self) -> dict[str, Endpoint]:
        """Registered endpoints by name."""
        return dict(self._endpoints)

    def endpoint(self, name: str) -> t.Callable[[Handler], Handler]:
        """Decorator registering a handler under ``name``."""
        def register(handler: Handler) -> Handler:
            self.add_endpoint(name, handler)
            return handler
        return register

    def add_endpoint(self, name: str, handler: Handler) -> None:
        """Register ``handler`` for endpoint ``name``."""
        if name in self._endpoints:
            raise ConfigurationError(
                f"service {self.name!r}: duplicate endpoint {name!r}")
        self._endpoints[name] = Endpoint(name, handler)

    def add_fallback(self, endpoint: str, value: object) -> None:
        """Register a graceful-degradation response for ``endpoint``.

        When a deployment's resilience config enables degradation, a
        call that exhausts its attempts resolves with ``value`` instead
        of an error — modelling TeaStore services (the Recommender in
        particular) that serve a static default when a dependency is
        unreachable.  The fallback is static by design: it must not
        depend on live state, because it is served when none exists.
        """
        if endpoint not in self._endpoints:
            raise ConfigurationError(
                f"service {self.name!r}: cannot register a fallback for "
                f"unknown endpoint {endpoint!r}; "
                f"known: {sorted(self._endpoints)}")
        if endpoint in self._fallbacks:
            raise ConfigurationError(
                f"service {self.name!r}: duplicate fallback for "
                f"endpoint {endpoint!r}")
        self._fallbacks[endpoint] = value

    def has_fallback(self, endpoint: str) -> bool:
        """Whether ``endpoint`` registered a degradation fallback."""
        return endpoint in self._fallbacks

    def fallback_for(self, endpoint: str) -> object:
        """The registered fallback payload for ``endpoint``."""
        try:
            return self._fallbacks[endpoint]
        except KeyError:
            raise ConfigurationError(
                f"service {self.name!r} has no fallback for "
                f"endpoint {endpoint!r}") from None

    def resolve(self, endpoint: str) -> Endpoint:
        """The endpoint named ``endpoint``; raises with choices on typos."""
        try:
            return self._endpoints[endpoint]
        except KeyError:
            raise ConfigurationError(
                f"service {self.name!r} has no endpoint {endpoint!r}; "
                f"known: {sorted(self._endpoints)}") from None

    def __repr__(self) -> str:
        return (f"<ServiceSpec {self.name!r} workers={self.workers} "
                f"endpoints={sorted(self._endpoints)}>")
