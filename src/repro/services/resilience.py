"""Caller-side resilience policies: timeouts, retries, circuit breakers.

The scale-up study assumes every replica is healthy; a production-scale
store cannot.  This module holds the *policy* objects the service fabric
consults when a :class:`~repro.services.deployment.Deployment` is built
with a :class:`ResilienceConfig`:

* per-call deadlines (enforced by the dispatch path and checked again
  instance-side so expired work is never executed);
* :class:`RetryPolicy` — exponential backoff with deterministic seeded
  jitter, capped by a deployment-wide retry *budget* so retry storms
  cannot amplify load unboundedly;
* :class:`CircuitBreaker` — a per-replica closed/open/half-open state
  machine consulted by :meth:`LoadBalancer.pick`, ejecting replicas that
  fail or stall until a half-open probe proves them healthy again;
* graceful degradation — when every attempt at a call fails and the
  target :class:`~repro.services.spec.ServiceSpec` registered a fallback
  for the endpoint, the caller receives the static fallback instead of
  an error (TeaStore's Recommender behaves exactly like this).

Everything is deterministic: jitter draws come from the deployment's
named random streams, and breaker transitions depend only on simulated
time and observed outcomes.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.resilience import ResilienceStats
    from repro.sim.rand import RandomStreams


#: Canonical resilience modes used by E13 and the chaos campaign engine,
#: in table order.
RESILIENCE_MODES = ("none", "timeout", "full")


def resilience_preset(mode: str,
                      call_timeout: float = 0.25
                      ) -> "ResilienceConfig | None":
    """The canonical :class:`ResilienceConfig` for one mode name.

    ``none`` is the plain dispatch path (returns ``None``), ``timeout``
    arms per-call deadlines plus graceful degradation only, and ``full``
    adds budgeted retries with backoff jitter and per-replica circuit
    breakers.  These are the configurations experiment E13 and every
    chaos campaign cross against fault scenarios, so they live here —
    next to the knobs they set — rather than in any one experiment.
    """
    if mode == "none":
        return None
    if mode == "timeout":
        return ResilienceConfig(timeout=call_timeout, degradation=True)
    if mode == "full":
        return ResilienceConfig(
            timeout=call_timeout, retries=2,
            backoff_base=0.01, backoff_factor=2.0, jitter=0.1,
            retry_budget=0.25,
            breaker_enabled=True, breaker_failure_threshold=5,
            breaker_recovery_time=0.25, breaker_half_open_max=1,
            degradation=True)
    raise ConfigurationError(f"unknown resilience mode {mode!r}; "
                             f"choose from {RESILIENCE_MODES}")


@dataclasses.dataclass(frozen=True)
class ResilienceConfig:
    """All resilience knobs for one deployment (JSON-native, hashable).

    The default instance is inert (``active`` is False): no timeout, no
    retries, no breakers, no degradation — a deployment built with it
    behaves byte-for-byte like one built with ``resilience=None``.
    """

    #: Per-call deadline in seconds (None disables timeouts).
    timeout: float | None = None
    #: Maximum retry attempts after the first try (0 disables retries).
    retries: int = 0
    #: First backoff delay in seconds.
    backoff_base: float = 0.010
    #: Multiplier applied per subsequent retry.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 1.0
    #: Jitter fraction: each delay is scaled by U(1-j, 1+j) drawn from a
    #: named stream, so it is deterministic per (seed, service).
    jitter: float = 0.1
    #: Retry budget: total retries may never exceed this fraction of
    #: total calls (0.2 caps retry amplification at 1.2x).
    retry_budget: float = 0.2
    #: Attach a circuit breaker to every replica.
    breaker_enabled: bool = False
    #: Consecutive failures that trip a closed breaker open.
    breaker_failure_threshold: int = 5
    #: Seconds an open breaker waits before allowing half-open probes.
    breaker_recovery_time: float = 0.5
    #: Concurrent probe requests allowed while half-open.
    breaker_half_open_max: int = 1
    #: Resolve exhausted calls with the target spec's endpoint fallback
    #: (when one is registered) instead of failing them.
    degradation: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive: {self.timeout}")
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0: {self.retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                f"backoff delays must be >= 0: base={self.backoff_base}, "
                f"cap={self.backoff_cap}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1): {self.jitter}")
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0: {self.retry_budget}")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError(
                f"breaker_failure_threshold must be >= 1: "
                f"{self.breaker_failure_threshold}")
        if self.breaker_recovery_time <= 0:
            raise ConfigurationError(
                f"breaker_recovery_time must be positive: "
                f"{self.breaker_recovery_time}")
        if self.breaker_half_open_max < 1:
            raise ConfigurationError(
                f"breaker_half_open_max must be >= 1: "
                f"{self.breaker_half_open_max}")

    @property
    def active(self) -> bool:
        """True when any resilience mechanism is switched on."""
        return (self.timeout is not None or self.retries > 0
                or self.breaker_enabled or self.degradation)

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form (for sweep-point identities)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "ResilienceConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**dict(data))


class RetryPolicy:
    """Backoff computation plus the deployment-wide retry budget gate.

    The budget is checked against live counters: a retry is admitted only
    while ``retries + 1 <= retry_budget * calls``.  Both counters are
    monotone, so the end-of-run invariant
    ``retries <= retry_budget * calls`` always holds — that is the
    "retry amplification never exceeds the budget" property.
    """

    def __init__(self, config: ResilienceConfig, streams: "RandomStreams"):
        self.config = config
        self.streams = streams

    def should_retry(self, attempts_made: int,
                     stats: "ResilienceStats") -> bool:
        """Whether another attempt is allowed after ``attempts_made``."""
        if attempts_made > self.config.retries:
            return False
        if (stats.retries + 1
                > self.config.retry_budget * stats.calls):
            stats.budget_denied += 1
            return False
        return True

    def backoff(self, service: str, retry_index: int) -> float:
        """Delay before the ``retry_index``-th retry (1-based), jittered."""
        delay = min(self.config.backoff_cap,
                    self.config.backoff_base
                    * self.config.backoff_factor ** (retry_index - 1))
        if self.config.jitter > 0 and delay > 0:
            delay *= self.streams.uniform(
                f"resilience.jitter.{service}",
                1.0 - self.config.jitter, 1.0 + self.config.jitter)
        return delay


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-replica closed/open/half-open failure ejector.

    * **closed** — traffic flows; ``breaker_failure_threshold``
      consecutive failures trip it open.
    * **open** — the load balancer skips the replica entirely until
      ``breaker_recovery_time`` has elapsed.
    * **half-open** — up to ``breaker_half_open_max`` probe requests are
      admitted; one success closes the breaker, one failure re-opens it
      (restarting the recovery clock).

    Transitions are resolved lazily against the simulated clock passed
    into :meth:`available` / the recording methods, so the breaker needs
    no scheduled callbacks of its own.
    """

    def __init__(self, failure_threshold: int = 5,
                 recovery_time: float = 0.5,
                 half_open_max: int = 1):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1: {failure_threshold}")
        if recovery_time <= 0:
            raise ConfigurationError(
                f"recovery_time must be positive: {recovery_time}")
        if half_open_max < 1:
            raise ConfigurationError(
                f"half_open_max must be >= 1: {half_open_max}")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_max = half_open_max
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: Times the breaker tripped from closed/half-open to open.
        self.opened_count = 0

    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "CircuitBreaker":
        """A breaker parameterized by a deployment's config."""
        return cls(failure_threshold=config.breaker_failure_threshold,
                   recovery_time=config.breaker_recovery_time,
                   half_open_max=config.breaker_half_open_max)

    def state(self, now: float) -> str:
        """Current state, resolving open → half-open lazily."""
        if (self._state == OPEN
                and now >= self._opened_at + self.recovery_time):
            self._state = HALF_OPEN
            self._half_open_inflight = 0
        return self._state

    def available(self, now: float) -> bool:
        """Whether the load balancer may route to this replica now."""
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        return self._half_open_inflight < self.half_open_max

    def note_dispatch(self, now: float) -> None:
        """Record that one request was just routed here (probe tracking)."""
        if self.state(now) == HALF_OPEN:
            self._half_open_inflight += 1

    def record_success(self, now: float) -> None:
        """One attempt against this replica succeeded."""
        if self.state(now) == HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)
        self._state = CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """One attempt against this replica failed or timed out."""
        state = self.state(now)
        if state == HALF_OPEN:
            self._trip(now)
            return
        self._consecutive_failures += 1
        if (state == CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._consecutive_failures = 0
        self._half_open_inflight = 0
        self.opened_count += 1

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self._state} "
                f"failures={self._consecutive_failures}/"
                f"{self.failure_threshold} opened={self.opened_count}>")
