"""Loopback RPC fabric between co-located services.

All services run on one server (the paper's scale-*up* setting), so the
"network" is the kernel loopback path: a small constant latency per hop
plus whatever CPU cost handlers model themselves.  Request and response
each pay one hop.
"""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError, DeadlineExceededError
from repro._units import us
from repro.sim.engine import Simulator
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.instance import ServiceInstance
    from repro.services.request import Request


def _trigger_succeed(done: Event, response: object) -> None:
    """Return-hop trigger: complete ``done`` with ``response``.

    Module-level (not a closure) so the kernel's ``schedule2`` entry
    point can carry ``(done, response)`` in the handle itself — one hop
    schedules nothing but the handle.
    """
    done.succeed(response)


def _trigger_fail(done: Event, exc: Exception) -> None:
    """Return-hop trigger: fail ``done`` with ``exc``."""
    done.fail(exc)


class RpcFabric:
    """Delivers requests to instances and responses back to callers."""

    def __init__(self, sim: Simulator, hop_latency: float = us(25.0)):
        if hop_latency < 0:
            raise ConfigurationError(
                f"hop latency must be non-negative: {hop_latency}")
        self.sim = sim
        self.hop_latency = hop_latency
        #: The kernel's two-operand schedule entry point, bound once —
        #: every RPC pays two hops through it (deliver and respond),
        #: each carrying its operands in the handle instead of a
        #: per-call closure.
        self._schedule2 = sim.schedule2
        self.messages_sent = 0
        #: Requests whose deadline elapsed while on the wire.
        self.expired_in_flight = 0

    def deliver(self, request: "Request",
                instance: "ServiceInstance") -> None:
        """Send ``request`` to ``instance`` after one network hop.

        A request whose deadline already passed when it lands is dropped
        at the fabric (failed with :class:`DeadlineExceededError`)
        instead of entering the replica's queue — the caller has given
        up, so admitting it would only waste queue capacity.
        """
        self.messages_sent += 1
        if self.hop_latency == 0:
            self._arrive(request, instance)
        else:
            # call_in minus the delay validation (hop_latency checked
            # non-negative at construction): straight to the kernel.
            self._schedule2(self.sim.now + self.hop_latency,
                            self._arrive, request, instance)

    def _arrive(self, request: "Request",
                instance: "ServiceInstance") -> None:
        if request.deadline is not None and self.sim.now >= request.deadline:
            self.expired_in_flight += 1
            request.done.fail(DeadlineExceededError(
                f"{request.service_name}/{request.endpoint} expired "
                f"in flight (deadline t={request.deadline:.6f})"))
            return
        instance.enqueue(request)

    def respond(self, done: Event, response: object) -> None:
        """Complete ``done`` with ``response`` after the return hop."""
        self.messages_sent += 1
        if self.hop_latency == 0:
            done.succeed(response)
        else:
            # As in deliver(): one kernel push per return hop.
            self._schedule2(self.sim.now + self.hop_latency,
                            _trigger_succeed, done, response)

    def respond_failure(self, done: Event, exc: Exception) -> None:
        """Propagate a handler failure to the caller after the return hop."""
        self.messages_sent += 1
        if self.hop_latency == 0:
            done.fail(exc)
        else:
            self._schedule2(self.sim.now + self.hop_latency,
                            _trigger_fail, done, exc)
