"""Microservice substrate.

The framework TeaStore-like applications are assembled from:

* :class:`~repro.services.request.Request` — one in-flight operation with
  its completion event and timestamps.
* :class:`~repro.services.spec.ServiceSpec` / endpoints — a service type:
  its workload profile, worker-pool width, and handler per endpoint.
* :class:`~repro.services.instance.ServiceInstance` — a running replica:
  a bounded request queue plus a pool of worker processes executing
  handlers; each replica is one CPU-scheduler :class:`TaskGroup`.
* :class:`~repro.services.instance.ServiceContext` — the handler-facing
  API: ``compute`` (CPU bursts), ``call`` (downstream RPC), randomness.
* :class:`~repro.services.rpc.RpcFabric` — loopback-latency message
  passing between services.
* :class:`~repro.services.loadbalancer.LoadBalancer` — replica selection
  (round-robin or least-outstanding), skipping dead replicas and open
  circuit breakers.
* :mod:`~repro.services.resilience` — caller-side resilience policies:
  :class:`~repro.services.resilience.ResilienceConfig` (deadlines,
  retries, budgets, degradation) and the per-replica
  :class:`~repro.services.resilience.CircuitBreaker`.
* :class:`~repro.services.registry.ServiceRegistry` — name → balancer.
* :class:`~repro.services.deployment.Deployment` — wires machine,
  scheduler, memory model, RPC and registry into one system under test.
"""

from repro.services.deployment import Deployment
from repro.services.instance import ServiceContext, ServiceInstance
from repro.services.loadbalancer import LoadBalancer
from repro.services.registry import ServiceRegistry
from repro.services.request import Request
from repro.services.resilience import (
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
)
from repro.services.rpc import RpcFabric
from repro.services.spec import Endpoint, ServiceSpec

__all__ = [
    "CircuitBreaker",
    "Deployment",
    "Endpoint",
    "LoadBalancer",
    "Request",
    "ResilienceConfig",
    "RetryPolicy",
    "RpcFabric",
    "ServiceContext",
    "ServiceInstance",
    "ServiceRegistry",
    "ServiceSpec",
]
