"""Running service replicas and the handler-facing context API."""

from __future__ import annotations

import itertools
import typing as t

from repro._errors import (
    DeadlineExceededError,
    ServiceOverloadError,
    ServiceUnavailableError,
    SimulationError,
)
from repro.cpu.burst import CpuBurst, TaskGroup
from repro.services.request import Request
from repro.services.spec import ServiceSpec
from repro.sim.events import AllOf, Event
from repro.sim.resources import Store
from repro.topology.cpuset import CpuSet

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment
    from repro.services.resilience import CircuitBreaker

_instance_ids = itertools.count()


class ServiceInstance:
    """One replica: a request queue drained by a pool of worker processes.

    Each replica owns a :class:`TaskGroup`, so all its CPU bursts share an
    affinity mask and accounting — the simulated equivalent of running one
    pinned Tomcat container.
    """

    __slots__ = ("deployment", "spec", "instance_id", "local_id", "group",
                 "queue", "shared", "outstanding", "completed", "rejected",
                 "failed", "expired", "accepting", "breaker",
                 "demand_factor", "_pause", "_workers",
                 "_demand_samplers", "_svc_streams")

    def __init__(self, deployment: "Deployment", spec: ServiceSpec,
                 affinity: CpuSet, home_node: int, local_id: int = 0):
        self.deployment = deployment
        self.spec = spec
        self.instance_id = next(_instance_ids)
        #: Index within this deployment (stable across runs, unlike the
        #: process-global ``instance_id``); use it — never
        #: ``instance_id`` — in random-stream names, or reruns in one
        #: process lose reproducibility.
        self.local_id = local_id
        self.group = TaskGroup(spec.name, affinity, profile=spec.profile,
                               home_node=home_node)
        self.queue = Store(deployment.sim, capacity=spec.queue_capacity)
        self.shared = (spec.shared_factory(self)
                       if spec.shared_factory else None)
        self.outstanding = 0
        self.completed = 0
        self.rejected = 0
        self.failed = 0
        #: Requests dropped because their deadline passed before a worker
        #: (or the fabric) got to them.
        self.expired = 0
        self.accepting = True
        #: Optional per-replica circuit breaker, attached by the
        #: deployment when its resilience config enables breakers.
        self.breaker: "CircuitBreaker | None" = None
        #: Fault-injection hook: every CPU demand submitted through the
        #: context is multiplied by this (a "slow replica" inflates it).
        self.demand_factor = 1.0
        #: Fault-injection hook: while set, workers stall on this event
        #: before processing any newly dequeued request.
        self._pause: Event | None = None
        #: (endpoint, mean, cv) → resolved lognormal demand sampler, and
        #: purpose → "svc.<service>.<purpose>" stream name: both depend
        #: only on the spec, so stream resolution happens once per
        #: endpoint, not once per request.
        self._demand_samplers: dict[tuple[str, float, float],
                                    t.Callable[[], float]] = {}
        self._svc_streams: dict[str, str] = {}
        self._workers = [_make_worker(self) for __ in range(spec.workers)]

    @property
    def affinity(self) -> CpuSet:
        """The replica's CPU mask."""
        return self.group.affinity

    @property
    def home_node(self) -> int:
        """NUMA node holding the replica's memory."""
        return self.group.home_node

    def enqueue(self, request: Request) -> None:
        """Admit a request (called by the RPC fabric).

        A full bounded queue sheds load: the request fails with
        :class:`~repro._errors.ServiceOverloadError`, which the caller
        observes on its completion event.
        """
        request.enqueued_at = self.deployment.sim.now
        request.instance_id = self.instance_id
        if not self.accepting:
            self.rejected += 1
            request.done.fail(ServiceUnavailableError(
                f"{self.spec.name}#{self.instance_id} is shut down"))
            return
        if self.queue.try_put(request):
            self.outstanding += 1
            return
        self.rejected += 1
        request.done.fail(ServiceOverloadError(
            f"{self.spec.name}#{self.instance_id} queue full "
            f"({self.spec.queue_capacity})"))

    def shutdown(self) -> None:
        """Crash semantics: stop accepting and fail everything queued.

        Requests already inside a worker run to completion (the simulated
        process finishes its in-flight work); queued ones fail
        immediately with :class:`ServiceUnavailableError`.  Idle workers
        stay parked on the empty queue and never run again.
        """
        self.accepting = False
        for item in self.queue.drain():
            request = t.cast(Request, item)
            self.outstanding -= 1
            self.rejected += 1
            request.done.fail(ServiceUnavailableError(
                f"{self.spec.name}#{self.instance_id} crashed with "
                f"request queued"))

    def pause(self, resume: Event) -> None:
        """Stall request processing until ``resume`` triggers.

        Workers finish their in-flight handler but park on ``resume``
        before touching the next dequeued request — the simulated
        equivalent of a stop-the-world stall (GC pause, SIGSTOP, IO
        freeze).  Queued requests keep aging toward their deadlines.
        """
        self._pause = resume

    def unpause(self) -> None:
        """Clear the pause gate (call before triggering its event)."""
        self._pause = None

    # ------------------------------------------------------------------
    # Worker rare paths, shared by the Python and compiled machines
    # ------------------------------------------------------------------
    def _expire_request(self, request: Request) -> None:
        """Dequeued past its deadline: the caller already gave up."""
        self.expired += 1
        self.outstanding -= 1
        self.deployment.rpc.respond_failure(
            request.done, DeadlineExceededError(
                f"{self.spec.name}#{self.instance_id} dequeued "
                f"request past its deadline "
                f"(t={request.deadline:.6f})"))

    def _fail_request(self, request: Request, exc: Exception) -> None:
        """Handler bug or modelled failure: propagate to the caller."""
        self.failed += 1
        self.outstanding -= 1
        self.deployment.rpc.respond_failure(request.done, exc)

    def __repr__(self) -> str:
        return (f"<ServiceInstance {self.spec.name}#{self.instance_id} "
                f"affinity={self.affinity.to_string()!r} "
                f"outstanding={self.outstanding}>")


class ServiceContext:
    """What a handler sees: CPU, downstream calls, randomness, shared state.

    Handlers are generator functions; every method returning an event is
    meant to be ``yield``-ed.
    """

    __slots__ = ("instance", "request")

    def __init__(self, instance: ServiceInstance, request: Request):
        self.instance = instance
        self.request = request

    @property
    def sim(self):
        """The simulator (for raw timeouts in advanced handlers)."""
        return self.instance.deployment.sim

    @property
    def shared(self) -> object:
        """Per-instance shared state built by the spec's factory."""
        return self.instance.shared

    @property
    def payload(self) -> object:
        """The request's payload."""
        return self.request.payload

    # ------------------------------------------------------------------
    # CPU work
    # ------------------------------------------------------------------
    def compute(self, mean_demand: float, cv: float = 0.25) -> Event:
        """Execute CPU work; yields until the burst completes.

        ``mean_demand`` is seconds of CPU at nominal speed; the actual
        demand is drawn from a lognormal with coefficient of variation
        ``cv`` on this service/endpoint's named stream.
        """
        instance = self.instance
        key = (self.request.endpoint, mean_demand, cv)
        sampler = instance._demand_samplers.get(key)
        if sampler is None:
            stream = f"demand.{instance.spec.name}.{key[0]}"
            sampler = instance._demand_samplers[key] = (
                instance.deployment.streams.lognormal_sampler(
                    stream, mean_demand, cv))
        return self.submit_demand(sampler())

    def submit_demand(self, demand: float) -> Event:
        """Execute an exact CPU demand (no sampling).

        The replica's ``demand_factor`` scales the demand — 1.0 in
        healthy operation, >1 while a slow-replica fault is active.
        """
        instance = self.instance
        scheduler = instance.deployment.scheduler
        core = getattr(scheduler, "_core", None)
        if core is not None:
            # Compiled model layer: the core scales the demand, builds
            # the burst and its event, and submits in one C call.
            return core.submit_demand(instance, demand)
        burst = CpuBurst(demand * instance.demand_factor,
                         instance.group, Event(scheduler.sim))
        scheduler.submit(burst)
        return burst.done

    @property
    def group(self) -> TaskGroup:
        """The replica's scheduling group."""
        return self.instance.group

    # ------------------------------------------------------------------
    # Downstream calls
    # ------------------------------------------------------------------
    def call(self, service_name: str, endpoint: str,
             payload: object = None) -> Event:
        """RPC to another service; yields until the response arrives."""
        return self.instance.deployment.dispatch(
            service_name, endpoint, payload=payload, parent=self.request)

    def gather(self, *events: Event) -> Event:
        """Wait for several events (e.g. parallel downstream calls)."""
        return AllOf(self.sim, events)

    # ------------------------------------------------------------------
    # Randomness (per-service named streams, reproducible)
    # ------------------------------------------------------------------
    def uniform(self, purpose: str, low: float = 0.0,
                high: float = 1.0) -> float:
        """A uniform draw on this service's ``purpose`` stream."""
        instance = self.instance
        stream = instance._svc_streams.get(purpose)
        if stream is None:
            stream = instance._svc_streams[purpose] = (
                f"svc.{instance.spec.name}.{purpose}")
        return instance.deployment.streams.uniform(stream, low, high)

    def integers(self, purpose: str, low: int, high: int) -> int:
        """An integer draw in ``[low, high)``."""
        stream = f"svc.{self.instance.spec.name}.{purpose}"
        return self.instance.deployment.streams.integers(stream, low, high)


# Worker machine states.
_BOOT, _GET, _PAUSE, _RUN = range(4)


class _WorkerMachine:
    """One replica worker as an explicit event-callback state machine.

    Semantically identical to the generator worker loop it replaced
    (kept below in spirit by the state names: dequeue → pause gate →
    deadline check → drive the endpoint handler → respond), but with no
    coroutine frame of its own: the machine registers *itself* as the
    callback on whatever event it waits for, so a request costs zero
    ``Process`` machinery — no generator frame, no per-wait bound
    method, no throw/send trampoline above the handler itself.

    The endpoint handler is still a generator (handlers are user code);
    the machine drives it directly with ``send``/``throw`` and chains
    through already-processed events inline, exactly as
    :meth:`Process._advance` would.  Counter consumption — the
    determinism contract with the kernel's shared insertion counter —
    is identical to the generator version on every path, including the
    bootstrap event, so golden digests are byte-for-byte unchanged.

    The compiled model layer (``repro.sim._cmodel.CWorker``) implements
    this exact machine in C; this class is the reference semantics.
    """

    __slots__ = ("instance", "sim", "rpc", "resolve", "queue_get",
                 "state", "request", "handler")

    def __init__(self, instance: ServiceInstance):
        deployment = instance.deployment
        self.instance = instance
        self.sim = deployment.sim
        self.rpc = deployment.rpc
        self.resolve = instance.spec.resolve
        self.queue_get = instance.queue.get
        self.state = _BOOT
        self.request: Request | None = None
        self.handler: t.Generator | None = None
        # Same bootstrap pattern (and counter consumption) as Process:
        # first run on the next processing slot, so construction order
        # within a time step does not matter.
        bootstrap = Event(self.sim)
        bootstrap.callbacks.append(self)  # type: ignore[union-attr]
        bootstrap.succeed()

    def __call__(self, event: Event) -> None:
        state = self.state
        if state == _RUN:
            if event._ok:
                self._drive(event._value, False)
            else:
                event._defused = True
                self._drive(event._value, True)
            return
        if not event._ok:
            # A failed queue-get / pause / bootstrap wake has no handler
            # frame to throw into; mirror the generator worker (whose
            # uncaught throw failed its Process): defuse, then escalate
            # through an unclaimed event on the next processing slot.
            event._defused = True
            Event(self.sim).fail(t.cast(Exception, event._value))
            return
        if state == _GET:
            request = t.cast(Request, event._value)
        elif state == _PAUSE:
            request = t.cast(Request, self.request)
            self.request = None
        else:  # _BOOT
            self._next_get()
            return
        self._begin(request)

    def _begin(self, request: Request) -> None:
        instance = self.instance
        sim = self.sim
        while True:
            # Loop, not branch: overlapping pause windows re-arm the
            # gate with the longer window's event before waking us.
            pause = instance._pause
            if pause is None:
                break
            if pause.callbacks is None:
                # Already processed: a failed gate escalates (as the
                # generator worker's uncaught throw did); a succeeded
                # one re-checks the gate.
                if not pause._ok:
                    pause._defused = True
                    Event(sim).fail(t.cast(Exception, pause._value))
                    return
                continue
            self.request = request
            self.state = _PAUSE
            pause.callbacks.append(self)
            return
        request.started_at = sim.now
        if request.deadline is not None and sim.now >= request.deadline:
            # The caller already gave up; don't burn CPU on it.
            instance._expire_request(request)
            self._next_get()
            return
        context = ServiceContext(instance, request)
        try:
            handler = self.resolve(request.endpoint).handler(context)
        except Exception as exc:  # unknown endpoint
            instance._fail_request(request, exc)
            self._next_get()
            return
        self.request = request
        self.handler = handler
        self.state = _RUN
        self._drive(None, False)

    def _drive(self, value: object, failed: bool) -> None:
        handler = t.cast(t.Generator, self.handler)
        send = handler.send
        throw = handler.throw
        sim = self.sim
        while True:
            try:
                if failed:
                    target = throw(t.cast(BaseException, value))
                else:
                    target = send(value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except Exception as exc:  # handler bug or modelled failure
                request = t.cast(Request, self.request)
                self.handler = None
                self.request = None
                self.instance._fail_request(request, exc)
                self._next_get()
                return
            except BaseException as exc:
                self.handler = None
                self.request = None
                # As for a failed wake: escalate on the next slot.
                Event(sim).fail(t.cast(Exception, exc))
                return
            if isinstance(target, Event):
                if target.sim is not sim:
                    self._protocol_error(
                        "yielded event belongs to another simulator")
                    return
                callbacks = target.callbacks
                if callbacks is None:
                    # Already processed: resume inline.
                    if target._ok:
                        value = target._value
                        failed = False
                    else:
                        target._defused = True
                        value = target._value
                        failed = True
                    continue
                callbacks.append(self)
                return
            self._protocol_error(
                f"process yielded a non-event: {target!r}")
            return

    def _finish(self, response: object) -> None:
        instance = self.instance
        request = t.cast(Request, self.request)
        self.handler = None
        self.request = None
        request.completed_at = self.sim.now
        instance.completed += 1
        instance.outstanding -= 1
        deployment = instance.deployment
        if deployment.tracer is not None:
            deployment.tracer.record(request)
        self.rpc.respond(request.done, response)
        self._next_get()

    def _next_get(self) -> None:
        self.state = _GET
        event = self.queue_get()
        # Fresh store-get events are never pre-processed: attach direct.
        event.callbacks.append(self)  # type: ignore[union-attr]

    def _protocol_error(self, message: str) -> None:
        instance = self.instance
        request = t.cast(Request, self.request)
        handler = t.cast(t.Generator, self.handler)
        self.handler = None
        self.request = None
        _worker_protocol_error(instance, handler, request, message)


def _worker_protocol_error(instance: ServiceInstance, handler: t.Generator,
                           request: Request, message: str) -> None:
    """Yield-protocol violation: throw in, then park the worker forever.

    Mirrors :meth:`Process._advance`'s yield-protocol branch byte for
    byte: the error is thrown into the handler, the next yield is
    discarded, and the worker parks permanently — but whatever the
    unwinding handler triggers on the way (the worker generator's
    completion or failure bookkeeping, plus the discarded queue-get's
    side effects) still lands, exactly as the generator worker behaved.
    Shared by the Python machine and the compiled ``CWorker`` (this is
    an unreachable-in-practice path, so it stays in Python).
    """
    deployment = instance.deployment
    error = SimulationError(message)
    try:
        handler.throw(error)
    except StopIteration as stop:
        request.completed_at = deployment.sim.now
        instance.completed += 1
        instance.outstanding -= 1
        if deployment.tracer is not None:
            deployment.tracer.record(request)
        deployment.rpc.respond(request.done, stop.value)
        instance.queue.get()  # discarded by the old worker's park, too
    except Exception as exc:
        instance._fail_request(request, exc)
        instance.queue.get()
    # Any other yield: parked with the handler suspended
    # (BaseException propagates, as from Process._advance).


def _make_worker(instance: ServiceInstance) -> object:
    """One worker for ``instance``: compiled when the model layer is.

    The deployment resolves the model backend once (same selection as
    the kernel backend); each worker is then either a C ``CWorker`` or
    the reference :class:`_WorkerMachine` — never a mix.
    """
    if getattr(instance.deployment, "compiled_model", False):
        from repro.sim.kernel import model_module
        return model_module().CWorker(instance)
    return _WorkerMachine(instance)
