"""Running service replicas and the handler-facing context API."""

from __future__ import annotations

import itertools
import typing as t

from repro._errors import (
    DeadlineExceededError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.cpu.burst import CpuBurst, TaskGroup
from repro.services.request import Request
from repro.services.spec import ServiceSpec
from repro.sim.events import AllOf, Event
from repro.sim.resources import Store
from repro.topology.cpuset import CpuSet

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment
    from repro.services.resilience import CircuitBreaker

_instance_ids = itertools.count()


class ServiceInstance:
    """One replica: a request queue drained by a pool of worker processes.

    Each replica owns a :class:`TaskGroup`, so all its CPU bursts share an
    affinity mask and accounting — the simulated equivalent of running one
    pinned Tomcat container.
    """

    __slots__ = ("deployment", "spec", "instance_id", "local_id", "group",
                 "queue", "shared", "outstanding", "completed", "rejected",
                 "failed", "expired", "accepting", "breaker",
                 "demand_factor", "_pause", "_workers",
                 "_demand_samplers", "_svc_streams")

    def __init__(self, deployment: "Deployment", spec: ServiceSpec,
                 affinity: CpuSet, home_node: int, local_id: int = 0):
        self.deployment = deployment
        self.spec = spec
        self.instance_id = next(_instance_ids)
        #: Index within this deployment (stable across runs, unlike the
        #: process-global ``instance_id``); use it — never
        #: ``instance_id`` — in random-stream names, or reruns in one
        #: process lose reproducibility.
        self.local_id = local_id
        self.group = TaskGroup(spec.name, affinity, profile=spec.profile,
                               home_node=home_node)
        self.queue = Store(deployment.sim, capacity=spec.queue_capacity)
        self.shared = (spec.shared_factory(self)
                       if spec.shared_factory else None)
        self.outstanding = 0
        self.completed = 0
        self.rejected = 0
        self.failed = 0
        #: Requests dropped because their deadline passed before a worker
        #: (or the fabric) got to them.
        self.expired = 0
        self.accepting = True
        #: Optional per-replica circuit breaker, attached by the
        #: deployment when its resilience config enables breakers.
        self.breaker: "CircuitBreaker | None" = None
        #: Fault-injection hook: every CPU demand submitted through the
        #: context is multiplied by this (a "slow replica" inflates it).
        self.demand_factor = 1.0
        #: Fault-injection hook: while set, workers stall on this event
        #: before processing any newly dequeued request.
        self._pause: Event | None = None
        #: (endpoint, mean, cv) → resolved lognormal demand sampler, and
        #: purpose → "svc.<service>.<purpose>" stream name: both depend
        #: only on the spec, so stream resolution happens once per
        #: endpoint, not once per request.
        self._demand_samplers: dict[tuple[str, float, float],
                                    t.Callable[[], float]] = {}
        self._svc_streams: dict[str, str] = {}
        self._workers = [deployment.sim.process(self._worker_loop())
                         for __ in range(spec.workers)]

    @property
    def affinity(self) -> CpuSet:
        """The replica's CPU mask."""
        return self.group.affinity

    @property
    def home_node(self) -> int:
        """NUMA node holding the replica's memory."""
        return self.group.home_node

    def enqueue(self, request: Request) -> None:
        """Admit a request (called by the RPC fabric).

        A full bounded queue sheds load: the request fails with
        :class:`~repro._errors.ServiceOverloadError`, which the caller
        observes on its completion event.
        """
        request.enqueued_at = self.deployment.sim.now
        request.instance_id = self.instance_id
        if not self.accepting:
            self.rejected += 1
            request.done.fail(ServiceUnavailableError(
                f"{self.spec.name}#{self.instance_id} is shut down"))
            return
        if self.queue.try_put(request):
            self.outstanding += 1
            return
        self.rejected += 1
        request.done.fail(ServiceOverloadError(
            f"{self.spec.name}#{self.instance_id} queue full "
            f"({self.spec.queue_capacity})"))

    def shutdown(self) -> None:
        """Crash semantics: stop accepting and fail everything queued.

        Requests already inside a worker run to completion (the simulated
        process finishes its in-flight work); queued ones fail
        immediately with :class:`ServiceUnavailableError`.  Idle workers
        stay parked on the empty queue and never run again.
        """
        self.accepting = False
        for item in self.queue.drain():
            request = t.cast(Request, item)
            self.outstanding -= 1
            self.rejected += 1
            request.done.fail(ServiceUnavailableError(
                f"{self.spec.name}#{self.instance_id} crashed with "
                f"request queued"))

    def pause(self, resume: Event) -> None:
        """Stall request processing until ``resume`` triggers.

        Workers finish their in-flight handler but park on ``resume``
        before touching the next dequeued request — the simulated
        equivalent of a stop-the-world stall (GC pause, SIGSTOP, IO
        freeze).  Queued requests keep aging toward their deadlines.
        """
        self._pause = resume

    def unpause(self) -> None:
        """Clear the pause gate (call before triggering its event)."""
        self._pause = None

    def _worker_loop(self) -> t.Generator:
        # Loop-invariant hot-path bindings (the deployment's sim/rpc and
        # the spec's endpoint table never change after construction; the
        # tracer can be attached later, so it is re-read per request).
        deployment = self.deployment
        sim = deployment.sim
        rpc = deployment.rpc
        resolve = self.spec.resolve
        queue_get = self.queue.get
        while True:
            request: Request = yield queue_get()  # type: ignore[misc]
            while self._pause is not None:
                # Loop, not branch: overlapping pause windows re-arm the
                # gate with the longer window's event before waking us.
                yield self._pause
            request.started_at = sim.now
            if request.deadline is not None and sim.now >= request.deadline:
                # The caller already gave up; don't burn CPU on it.
                self.expired += 1
                self.outstanding -= 1
                rpc.respond_failure(
                    request.done, DeadlineExceededError(
                        f"{self.spec.name}#{self.instance_id} dequeued "
                        f"request past its deadline "
                        f"(t={request.deadline:.6f})"))
                continue
            context = ServiceContext(self, request)
            try:
                endpoint = resolve(request.endpoint)
                response = yield from endpoint.handler(context)
            except Exception as exc:  # handler bug or modelled failure
                self.failed += 1
                self.outstanding -= 1
                rpc.respond_failure(request.done, exc)
                continue
            request.completed_at = sim.now
            self.completed += 1
            self.outstanding -= 1
            if deployment.tracer is not None:
                deployment.tracer.record(request)
            rpc.respond(request.done, response)

    def __repr__(self) -> str:
        return (f"<ServiceInstance {self.spec.name}#{self.instance_id} "
                f"affinity={self.affinity.to_string()!r} "
                f"outstanding={self.outstanding}>")


class ServiceContext:
    """What a handler sees: CPU, downstream calls, randomness, shared state.

    Handlers are generator functions; every method returning an event is
    meant to be ``yield``-ed.
    """

    __slots__ = ("instance", "request")

    def __init__(self, instance: ServiceInstance, request: Request):
        self.instance = instance
        self.request = request

    @property
    def sim(self):
        """The simulator (for raw timeouts in advanced handlers)."""
        return self.instance.deployment.sim

    @property
    def shared(self) -> object:
        """Per-instance shared state built by the spec's factory."""
        return self.instance.shared

    @property
    def payload(self) -> object:
        """The request's payload."""
        return self.request.payload

    # ------------------------------------------------------------------
    # CPU work
    # ------------------------------------------------------------------
    def compute(self, mean_demand: float, cv: float = 0.25) -> Event:
        """Execute CPU work; yields until the burst completes.

        ``mean_demand`` is seconds of CPU at nominal speed; the actual
        demand is drawn from a lognormal with coefficient of variation
        ``cv`` on this service/endpoint's named stream.
        """
        instance = self.instance
        key = (self.request.endpoint, mean_demand, cv)
        sampler = instance._demand_samplers.get(key)
        if sampler is None:
            stream = f"demand.{instance.spec.name}.{key[0]}"
            sampler = instance._demand_samplers[key] = (
                instance.deployment.streams.lognormal_sampler(
                    stream, mean_demand, cv))
        return self.submit_demand(sampler())

    def submit_demand(self, demand: float) -> Event:
        """Execute an exact CPU demand (no sampling).

        The replica's ``demand_factor`` scales the demand — 1.0 in
        healthy operation, >1 while a slow-replica fault is active.
        """
        instance = self.instance
        deployment = instance.deployment
        burst = CpuBurst(demand * instance.demand_factor,
                         instance.group, Event(deployment.sim))
        deployment.scheduler.submit(burst)
        return burst.done

    @property
    def group(self) -> TaskGroup:
        """The replica's scheduling group."""
        return self.instance.group

    # ------------------------------------------------------------------
    # Downstream calls
    # ------------------------------------------------------------------
    def call(self, service_name: str, endpoint: str,
             payload: object = None) -> Event:
        """RPC to another service; yields until the response arrives."""
        return self.instance.deployment.dispatch(
            service_name, endpoint, payload=payload, parent=self.request)

    def gather(self, *events: Event) -> Event:
        """Wait for several events (e.g. parallel downstream calls)."""
        return AllOf(self.sim, events)

    # ------------------------------------------------------------------
    # Randomness (per-service named streams, reproducible)
    # ------------------------------------------------------------------
    def uniform(self, purpose: str, low: float = 0.0,
                high: float = 1.0) -> float:
        """A uniform draw on this service's ``purpose`` stream."""
        instance = self.instance
        stream = instance._svc_streams.get(purpose)
        if stream is None:
            stream = instance._svc_streams[purpose] = (
                f"svc.{instance.spec.name}.{purpose}")
        return instance.deployment.streams.uniform(stream, low, high)

    def integers(self, purpose: str, low: int, high: int) -> int:
        """An integer draw in ``[low, high)``."""
        stream = f"svc.{self.instance.spec.name}.{purpose}"
        return self.instance.deployment.streams.integers(stream, low, high)
