"""Service discovery: name → load balancer → instances.

Mirrors TeaStore's Registry service functionally (it tells callers where
replicas live); its CPU cost is negligible and modelled as part of RPC
latency, which the paper's profiling also observed (Registry barely
registers in CPU-time breakdowns).
"""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.services.loadbalancer import LoadBalancer

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.instance import ServiceInstance


class ServiceRegistry:
    """Maps service names to their load balancers."""

    def __init__(self, default_policy: str = "round_robin"):
        self.default_policy = default_policy
        self._balancers: dict[str, LoadBalancer] = {}
        #: Lifetime count of :meth:`lookup` calls.  The registry is a
        #: shared-resource boundary in sharded runs (see
        #: :mod:`repro.scale`): per-window deltas of this counter are
        #: part of each shard's published demand profile.
        self.lookups = 0

    @property
    def service_names(self) -> list[str]:
        """All registered service names, sorted."""
        return sorted(self._balancers)

    def balancer(self, service_name: str) -> LoadBalancer:
        """The balancer for ``service_name`` (created on first use)."""
        balancer = self._balancers.get(service_name)
        if balancer is None:
            balancer = LoadBalancer(service_name, self.default_policy)
            self._balancers[service_name] = balancer
        return balancer

    def register(self, instance: "ServiceInstance") -> None:
        """Add a replica under its service name."""
        self.balancer(instance.spec.name).add(instance)

    def deregister(self, instance: "ServiceInstance") -> None:
        """Remove a replica."""
        self.balancer(instance.spec.name).remove(instance)

    def has_service(self, service_name: str) -> bool:
        """Whether any replica of ``service_name`` was ever registered."""
        return service_name in self._balancers

    def lookup(self, service_name: str,
               now: float = 0.0) -> "ServiceInstance":
        """Pick a replica of ``service_name`` for one request.

        ``now`` is the simulated time, forwarded to the balancer so
        circuit-breaker recovery windows resolve against the clock.
        """
        self.lookups += 1
        balancer = self._balancers.get(service_name)
        if balancer is None:
            raise ConfigurationError(
                f"no such service: {service_name!r}; "
                f"known: {self.service_names}")
        return balancer.pick(now)

    def instances_of(self, service_name: str) -> list["ServiceInstance"]:
        """All replicas of one service."""
        balancer = self._balancers.get(service_name)
        return balancer.instances if balancer else []

    def all_instances(self) -> list["ServiceInstance"]:
        """Every replica of every service."""
        instances: list["ServiceInstance"] = []
        for name in self.service_names:
            instances.extend(self._balancers[name].instances)
        return instances
