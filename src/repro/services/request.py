"""In-flight request objects."""

from __future__ import annotations

import itertools
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

_request_ids = itertools.count()


class Request:
    """One operation travelling through the service graph.

    ``done`` succeeds with the handler's response payload once the target
    service finishes (including the return network hop).  Timestamps allow
    latency decomposition in tests and experiments.
    """

    __slots__ = ("request_id", "service_name", "endpoint", "payload",
                 "parent", "done", "created_at", "enqueued_at",
                 "started_at", "completed_at", "instance_id",
                 "deadline", "attempt")

    def __init__(self, service_name: str, endpoint: str, done: "Event",
                 payload: object = None, parent: "Request | None" = None,
                 created_at: float = 0.0,
                 deadline: float | None = None,
                 attempt: int = 1):
        self.request_id = next(_request_ids)
        self.service_name = service_name
        self.endpoint = endpoint
        self.payload = payload
        #: The request whose handler issued this one (None for user calls).
        self.parent = parent
        self.done = done
        self.created_at = created_at
        self.enqueued_at: float | None = None
        self.started_at: float | None = None
        self.completed_at: float | None = None
        #: Replica that served the request (set at dispatch).
        self.instance_id: int | None = None
        #: Absolute simulated time after which the caller has given up;
        #: the fabric and the serving replica both drop expired work.
        self.deadline = deadline
        #: 1 for the first try; retries of the same logical call count up.
        self.attempt = attempt

    @property
    def expired_at(self) -> float:
        """The deadline, or +inf when the call has none."""
        return self.deadline if self.deadline is not None else float("inf")

    @property
    def depth(self) -> int:
        """Call depth below the user request (0 = user-facing)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:
        return (f"<Request #{self.request_id} "
                f"{self.service_name}/{self.endpoint}>")
