"""In-flight request objects."""

from __future__ import annotations

import itertools
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

_request_ids = itertools.count()


class Request:
    """One operation travelling through the service graph.

    ``done`` succeeds with the handler's response payload once the target
    service finishes (including the return network hop).  Timestamps allow
    latency decomposition in tests and experiments.
    """

    __slots__ = ("request_id", "service_name", "endpoint", "payload",
                 "parent", "done", "created_at", "enqueued_at",
                 "started_at", "completed_at", "instance_id")

    def __init__(self, service_name: str, endpoint: str, done: "Event",
                 payload: object = None, parent: "Request | None" = None,
                 created_at: float = 0.0):
        self.request_id = next(_request_ids)
        self.service_name = service_name
        self.endpoint = endpoint
        self.payload = payload
        #: The request whose handler issued this one (None for user calls).
        self.parent = parent
        self.done = done
        self.created_at = created_at
        self.enqueued_at: float | None = None
        self.started_at: float | None = None
        self.completed_at: float | None = None
        #: Replica that served the request (set at dispatch).
        self.instance_id: int | None = None

    @property
    def depth(self) -> int:
        """Call depth below the user request (0 = user-facing)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:
        return (f"<Request #{self.request_id} "
                f"{self.service_name}/{self.endpoint}>")
