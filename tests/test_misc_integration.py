"""Cross-cutting small tests: reprs, counters, CLI-adjacent helpers."""

import pytest

from repro._errors import SimulationError
from repro._units import GIB, KIB, MIB, SECOND, kib, mib, ms, us
from repro.cpu import CpuScheduler, TaskGroup
from repro.memory import MemorySystemModel, WorkloadProfile
from repro.services import Deployment, ServiceSpec
from repro.sim import Simulator
from repro.topology import CpuSet, tiny_machine


def test_unit_helpers():
    assert SECOND == 1.0
    assert ms(2.0) == pytest.approx(0.002)
    assert us(5.0) == pytest.approx(5e-6)
    assert mib(2) == 2 * MIB
    assert kib(3) == 3 * KIB
    assert GIB == 1024 * MIB


def test_reprs_are_informative():
    sim = Simulator()
    assert "now=" in repr(sim)
    machine = tiny_machine()
    assert "lcpus" in repr(machine)
    assert "CpuSet" in repr(CpuSet([1, 2]))
    group = TaskGroup("g", CpuSet([0]))
    assert "TaskGroup" in repr(group)
    model = MemorySystemModel(machine)
    assert "residencies" in repr(model)
    handle = sim.call_in(1.0, lambda: None)
    assert "at t=" in repr(handle)
    handle.cancel()
    assert "cancelled" in repr(handle)
    event = sim.event()
    assert "pending" in repr(event)
    timeout = sim.timeout(0.5)
    assert "Timeout" in repr(timeout)


def test_nested_run_rejected():
    sim = Simulator()

    def nested():
        sim.run(until=2.0)
        yield sim.timeout(1.0)

    sim.process(nested())
    with pytest.raises(SimulationError, match="already running"):
        sim.run()


def test_rpc_counts_messages():
    deployment = Deployment(tiny_machine(), seed=0)
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.1, 0.1)
    spec = ServiceSpec("svc", profile, workers=1)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(ms(0.1))
        return None

    deployment.add_instance(spec)
    before = deployment.rpc.messages_sent
    done = deployment.dispatch("svc", "op")
    deployment.run()
    assert done.ok
    # One delivery + one response.
    assert deployment.rpc.messages_sent == before + 2


def test_request_repr_and_depth_root():
    from repro.services.request import Request
    sim = Simulator()
    request = Request("svc", "op", sim.event())
    assert "svc/op" in repr(request)
    assert request.depth == 0


def test_scheduler_repr_counts():
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine)
    assert "0 running" in repr(scheduler)


def test_instance_local_ids_are_deployment_scoped():
    machine = tiny_machine()
    profile = WorkloadProfile("svc", 1024, 1024, 0.1, 0.1)
    spec = ServiceSpec("svc", profile, workers=1)
    spec.add_endpoint("op", lambda ctx: iter(()))

    first = Deployment(machine, seed=0)
    second = Deployment(machine, seed=0)
    a = [first.add_instance(spec).local_id for __ in range(3)]
    b = [second.add_instance(spec).local_id for __ in range(3)]
    assert a == b == [0, 1, 2]


def test_store_drain_returns_items_in_order():
    from repro.sim import Store
    sim = Simulator()
    store = Store(sim)
    for value in ("a", "b", "c"):
        store.put(value)
    assert store.drain() == ["a", "b", "c"]
    assert len(store) == 0
    assert store.drain() == []
