"""Tests for time-varying load and the CCX-pool autoscaler."""

import pytest

from repro._errors import ConfigurationError, WorkloadError
from repro._units import ms
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.placement import Autoscaler
from repro.services import Deployment, ServiceSpec
from repro.topology import medium_machine
from repro.workload import OpenLoopWorkload


def scalable_system():
    deployment = Deployment(medium_machine(), seed=4,
                            smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel())
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.1, 0.1)
    spec = ServiceSpec("svc", profile, workers=16)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(ms(2.0))
        return "ok"

    return deployment, spec


def session(user_id):
    while True:
        yield ("svc", "op", None)


# ---------------------------------------------------------------------------
# Time-varying open-loop rate
# ---------------------------------------------------------------------------

def test_constant_rate_still_works():
    deployment, spec = scalable_system()
    deployment.add_instance(spec)
    workload = OpenLoopWorkload(deployment, session, rate=200.0)
    assert workload.current_rate() == 200.0


def test_rate_function_is_sampled_over_time():
    deployment, spec = scalable_system()
    deployment.add_instance(spec)
    workload = OpenLoopWorkload(deployment, session,
                                rate=lambda t: 100.0 + 100.0 * t)
    workload.start()
    deployment.run(until=2.0)
    assert workload.current_rate() == pytest.approx(300.0)
    # Mean rate over [0,2] is 200/s → ~400 arrivals.
    assert 250 < workload.meter.lifetime_count < 550


def test_rate_function_returning_nonpositive_raises():
    deployment, spec = scalable_system()
    deployment.add_instance(spec)
    workload = OpenLoopWorkload(deployment, session, rate=lambda t: -1.0)
    workload.start()
    with pytest.raises(WorkloadError):
        deployment.run(until=1.0)


# ---------------------------------------------------------------------------
# Autoscaler
# ---------------------------------------------------------------------------

def test_autoscaler_validation():
    deployment, spec = scalable_system()
    with pytest.raises(ConfigurationError):
        Autoscaler(deployment, spec, ccx_pool=[])
    with pytest.raises(ConfigurationError):
        Autoscaler(deployment, spec, ccx_pool=[0, 0])
    with pytest.raises(ConfigurationError):
        Autoscaler(deployment, spec, ccx_pool=[0], min_replicas=2)
    with pytest.raises(ConfigurationError):
        Autoscaler(deployment, spec, ccx_pool=[99])
    with pytest.raises(ConfigurationError):
        Autoscaler(deployment, spec, ccx_pool=[0], interval=0.0)
    with pytest.raises(ConfigurationError):
        Autoscaler(deployment, spec, ccx_pool=[0],
                   low_watermark=0.8, high_watermark=0.5)


def test_autoscaler_starts_at_min_replicas():
    deployment, spec = scalable_system()
    scaler = Autoscaler(deployment, spec, ccx_pool=[0, 1, 2],
                        min_replicas=2)
    assert scaler.replica_count == 2
    assert len(deployment.registry.instances_of("svc")) == 2


def test_autoscaler_grows_under_load():
    deployment, spec = scalable_system()
    scaler = Autoscaler(deployment, spec, ccx_pool=[0, 1, 2, 3],
                        min_replicas=1, interval=0.2)
    # One CCX (4 cores at 2ms/op) saturates around 2000/s; offer well
    # above that.
    workload = OpenLoopWorkload(deployment, session, rate=4000.0)
    workload.start()
    deployment.run(until=3.0)
    assert scaler.replica_count >= 2
    assert len(scaler.scale_ups()) >= 1
    # All managed replicas stay CCX-aligned.
    for instance in deployment.registry.instances_of("svc"):
        ccxs = {deployment.machine.cpu(c).ccx.index
                for c in instance.affinity}
        assert len(ccxs) == 1


def test_autoscaler_shrinks_when_idle():
    deployment, spec = scalable_system()
    scaler = Autoscaler(deployment, spec, ccx_pool=[0, 1, 2],
                        min_replicas=1, interval=0.2)
    # Grow first under heavy load...
    heavy = OpenLoopWorkload(deployment, session,
                             rate=lambda t: 4000.0 if t < 1.5 else 20.0)
    heavy.start()
    deployment.run(until=1.5)
    grown = scaler.replica_count
    # ...then the load collapses and the scaler shrinks back.
    deployment.run(until=5.0)
    assert grown >= 2
    assert scaler.replica_count < grown
    assert len(scaler.scale_downs()) >= 1


def test_autoscaler_never_exceeds_pool_or_drops_below_min():
    deployment, spec = scalable_system()
    scaler = Autoscaler(deployment, spec, ccx_pool=[0, 1],
                        min_replicas=1, interval=0.1)
    workload = OpenLoopWorkload(deployment, session, rate=6000.0)
    workload.start()
    deployment.run(until=2.0)
    assert 1 <= scaler.replica_count <= 2


def test_autoscaler_diurnal_cycle_tracks_load():
    import math
    deployment, spec = scalable_system()
    scaler = Autoscaler(deployment, spec, ccx_pool=[0, 1, 2, 3],
                        min_replicas=1, interval=0.2)

    def diurnal(t):
        return 2200.0 + 1800.0 * math.sin(2 * math.pi * t / 4.0)

    workload = OpenLoopWorkload(deployment, session, rate=diurnal)
    workload.start()
    counts = []
    for step in range(1, 17):
        deployment.run(until=step * 0.5)
        counts.append(scaler.replica_count)
    # The replica count must actually vary with the load wave.
    assert max(counts) >= 2
    assert min(counts) <= max(counts) - 1
    assert workload.errors == 0
