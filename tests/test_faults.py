"""Tests for fault injection and crash semantics."""

import pytest

from repro._errors import ConfigurationError, ServiceUnavailableError
from repro._units import ms
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.services import Deployment, ServiceSpec
from repro.topology import small_numa_machine, tiny_machine
from repro.workload import ClosedLoopWorkload, FaultInjector, run_experiment
from repro.teastore import build_teastore
from repro.teastore.config import TeaStoreConfig


def echo_system(replicas=2, demand=ms(1.0)):
    deployment = Deployment(tiny_machine(), seed=0,
                            smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel())
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.1, 0.1)
    spec = ServiceSpec("svc", profile, workers=2)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(demand)
        return "ok"

    for __ in range(replicas):
        deployment.add_instance(spec)
    return deployment


def session(user_id):
    while True:
        yield ("svc", "op", None)


def test_shutdown_fails_queued_requests_but_finishes_inflight():
    deployment = echo_system(replicas=1, demand=ms(10.0))
    deployment.run(until=0.0)  # boot workers
    inflight = [deployment.dispatch("svc", "op") for __ in range(2)]
    queued = deployment.dispatch("svc", "op")
    queued.defuse()
    instance = deployment.registry.instances_of("svc")[0]
    instance.shutdown()
    for event in inflight:
        event.defuse()
    deployment.run()
    # The two in worker hands completed; the queued one failed.
    assert all(e.ok for e in inflight)
    assert not queued.ok
    assert isinstance(queued.value, ServiceUnavailableError)


def test_shutdown_rejects_new_requests():
    deployment = echo_system(replicas=1)
    instance = deployment.registry.instances_of("svc")[0]
    instance.shutdown()
    done = deployment.dispatch("svc", "op")
    done.defuse()
    deployment.run()
    assert not done.ok
    assert isinstance(done.value, ServiceUnavailableError)
    assert instance.rejected >= 1


def test_kill_reroutes_to_survivor():
    deployment = echo_system(replicas=2)
    injector = FaultInjector(deployment)
    injector.kill_at(0.5, "svc", replica_index=0)
    workload = ClosedLoopWorkload(deployment, session,
                                  n_users=2, think_time=0.01)
    workload.start()
    deployment.run(until=2.0)
    assert len(injector.kills()) == 1
    survivors = deployment.registry.instances_of("svc")
    assert len(survivors) == 1
    # Work continued after the kill (errors possible at the instant of
    # the kill, but the system keeps serving).
    completed_after = survivors[0].completed
    assert completed_after > 50


def test_kill_and_restore_cycle():
    deployment = echo_system(replicas=2)
    injector = FaultInjector(deployment)
    injector.kill_at(0.5, "svc", replica_index=0, restore_after=0.5)
    workload = ClosedLoopWorkload(deployment, session,
                                  n_users=4, think_time=0.01)
    workload.start()
    deployment.run(until=2.0)
    assert len(injector.kills()) == 1
    assert len(injector.restores()) == 1
    assert len(deployment.registry.instances_of("svc")) == 2
    restored = injector.restores()[0]
    assert restored.time == pytest.approx(1.0)


def test_restored_replica_matches_dead_one():
    deployment = echo_system(replicas=1)
    original = deployment.registry.instances_of("svc")[0]
    original_affinity = original.affinity
    injector = FaultInjector(deployment)
    injector.kill_at(0.2, "svc", restore_after=0.3)
    # Keep one more replica so the registry is never empty.
    deployment.add_instance(original.spec)
    deployment.run(until=1.0)
    replacement = [i for i in deployment.registry.instances_of("svc")
                   if i.instance_id != original.instance_id]
    assert any(i.affinity == original_affinity for i in replacement)


def test_fault_validation():
    deployment = echo_system()
    injector = FaultInjector(deployment)
    with pytest.raises(ConfigurationError):
        injector.kill_at(-1.0, "svc")
    with pytest.raises(ConfigurationError):
        injector.kill_at(1.0, "svc", restore_after=0.0)
    injector.kill_at(0.5, "svc", replica_index=99)
    with pytest.raises(ConfigurationError):
        deployment.run(until=1.0)  # resolves at fire time → invalid index


def test_teastore_survives_webui_replica_loss():
    """Integration: kill one WebUI replica mid-run; the store keeps
    serving through the remaining ones with only transient errors."""
    deployment = Deployment(small_numa_machine(), seed=2)
    config = TeaStoreConfig(
        replicas={"webui": 2, "auth": 1, "persistence": 1, "image": 1,
                  "recommender": 1, "db": 1},
        workers={"webui": 32, "auth": 8, "persistence": 16, "image": 8,
                 "recommender": 8, "db": 16})
    store = build_teastore(deployment, config)
    injector = FaultInjector(deployment)
    injector.kill_at(1.5, "webui", replica_index=0)
    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=24, think_time=0.05)
    result = run_experiment(deployment, workload, warmup=1.0, duration=2.0)
    assert len(injector.kills()) == 1
    assert result.throughput > 50
    # Only requests caught in the dying replica's queue may error.
    assert result.errors < result.completed * 0.2
    assert len(store.deployment.registry.instances_of("webui")) == 1


# ----------------------------------------------------------------------
# Windowed-fault composition and edge cases
# ----------------------------------------------------------------------
def test_overlapping_slow_windows_compose_multiplicatively():
    deployment = echo_system(replicas=1)
    instance = deployment.registry.instances_of("svc")[0]
    injector = FaultInjector(deployment)
    injector.slow_at(0.1, "svc", factor=2.0, duration=0.4)   # [0.1, 0.5)
    injector.slow_at(0.2, "svc", factor=3.0, duration=0.1)   # [0.2, 0.3)
    deployment.run(until=0.15)
    assert instance.demand_factor == pytest.approx(2.0)
    deployment.run(until=0.25)
    assert instance.demand_factor == pytest.approx(6.0)
    deployment.run(until=0.35)  # inner window lifted, outer still active
    assert instance.demand_factor == pytest.approx(2.0)
    deployment.run(until=0.55)
    # Exact restore, not approximate: the stack drained completely.
    assert instance.demand_factor == 1.0
    assert len(injector.of_kind("slow")) == 2
    assert len(injector.of_kind("recover")) == 2


def test_overlapping_pause_windows_park_until_last_ends():
    deployment = echo_system(replicas=1)
    instance = deployment.registry.instances_of("svc")[0]
    injector = FaultInjector(deployment)
    injector.pause_at(0.1, "svc", duration=0.3)  # [0.1, 0.4)
    injector.pause_at(0.2, "svc", duration=0.4)  # [0.2, 0.6)
    workload = ClosedLoopWorkload(deployment, session,
                                  n_users=2, think_time=0.01)
    workload.start()
    deployment.run(until=0.25)
    parked = instance.completed
    deployment.run(until=0.55)
    # The first window's end at 0.4 must NOT resume processing: the
    # second window still holds the gate until 0.6.
    assert instance.completed == parked
    deployment.run(until=0.9)
    assert instance.completed > parked
    assert len(injector.of_kind("pause")) == 2
    assert len(injector.of_kind("resume")) == 2


def test_zero_duration_faults_are_rejected():
    deployment = echo_system()
    injector = FaultInjector(deployment)
    with pytest.raises(ConfigurationError):
        injector.slow_at(0.5, "svc", duration=0.0)
    with pytest.raises(ConfigurationError):
        injector.pause_at(0.5, "svc", duration=0.0)
    with pytest.raises(ConfigurationError):
        injector.hog_at(0.5, "svc", duration=0.0)
    with pytest.raises(ConfigurationError):
        injector.netdelay_at(0.5, duration=0.0)
    with pytest.raises(ConfigurationError):
        injector.slow_at(0.5, "svc", factor=0.0)
    with pytest.raises(ConfigurationError):
        injector.netdelay_at(0.5, factor=-1.0)
    with pytest.raises(ConfigurationError):
        injector.hog_at(0.5, "svc", workers=0)
    with pytest.raises(ConfigurationError):
        injector.hog_at(0.5, "svc", intensity=0.0)


def test_fault_on_killed_replica_skips_deterministically():
    deployment = echo_system(replicas=2)
    injector = FaultInjector(deployment)
    injector.kill_at(0.2, "svc", replica_index=1)
    # After the kill only one replica remains, so index 1 is gone; a
    # fault composed into the same schedule degrades to a recorded
    # no-op instead of blowing up the run.
    injector.slow_at(0.5, "svc", replica_index=1, factor=4.0,
                     duration=0.1)
    injector.pause_at(0.6, "svc", replica_index=1, duration=0.1)
    deployment.run(until=1.0)
    assert len(injector.kills()) == 1
    skipped = injector.of_kind("skipped")
    assert len(skipped) == 2
    assert all(event.service == "svc" for event in skipped)
    assert not injector.of_kind("slow")
    assert not injector.of_kind("pause")
    # The surviving replica is untouched.
    survivor = deployment.registry.instances_of("svc")[0]
    assert survivor.demand_factor == 1.0


def test_hog_competes_with_request_handlers():
    deployment = echo_system(replicas=1, demand=ms(2.0))
    injector = FaultInjector(deployment)
    # 16 hog loops over 8 logical CPUs: the whole machine contends.
    injector.hog_at(0.5, "svc", duration=0.5, intensity=4.0, workers=16)
    workload = ClosedLoopWorkload(deployment, session,
                                  n_users=4, think_time=0.01)
    workload.start()
    deployment.run(until=0.5)
    workload.latency.reset()
    deployment.run(until=1.0)
    during = workload.latency.mean()
    workload.latency.reset()
    deployment.run(until=1.6)
    after = workload.latency.mean()
    # Handlers visibly queue behind the hog bursts, then recover.
    assert during > after * 1.5
    assert len(injector.of_kind("hog")) == 1
    assert len(injector.of_kind("hog_end")) == 1


def test_netdelay_stacks_and_restores_base_exactly():
    deployment = echo_system()
    base = 0.00123
    deployment.rpc.hop_latency = base
    injector = FaultInjector(deployment)
    injector.netdelay_at(0.1, factor=3.0, duration=0.2)   # [0.1, 0.3)
    injector.netdelay_at(0.15, factor=5.0, duration=0.3)  # [0.15, 0.45)
    deployment.run(until=0.12)
    assert deployment.rpc.hop_latency == pytest.approx(base * 3.0)
    deployment.run(until=0.2)
    assert deployment.rpc.hop_latency == pytest.approx(base * 15.0)
    deployment.run(until=0.35)
    assert deployment.rpc.hop_latency == pytest.approx(base * 5.0)
    deployment.run(until=0.5)
    # Bitwise restore of the captured base, not a divided-back value.
    assert deployment.rpc.hop_latency == base
    events = injector.of_kind("netdelay") + injector.of_kind("netrestore")
    assert len(events) == 4
    from repro.workload.faults import FABRIC
    assert all(event.service == FABRIC for event in events)


def test_apply_schedules_hog_and_netdelay_kinds():
    deployment = echo_system(replicas=1)
    injector = FaultInjector(deployment)
    injector.apply([
        {"kind": "hog", "time": 0.2, "service": "svc",
         "duration": 0.1, "intensity": 2.0, "workers": 2},
        {"kind": "netdelay", "time": 0.3, "factor": 4.0,
         "duration": 0.1},
    ])
    deployment.run(until=0.6)
    assert len(injector.of_kind("hog")) == 1
    assert len(injector.of_kind("netdelay")) == 1
    assert len(injector.of_kind("netrestore")) == 1


def test_apply_rejects_unknown_kind():
    deployment = echo_system()
    injector = FaultInjector(deployment)
    with pytest.raises(ConfigurationError):
        injector.apply([{"kind": "meteor", "time": 0.5,
                         "service": "svc"}])
