"""Tests for the perf/memory bench harness and its artifact schema."""

import json

import pytest

from repro._errors import ConfigurationError
from repro.orchestrator import perfbench


def make_entry(mode="smoke", metric="wall", label=""):
    if metric == "wall":
        return perfbench.trajectory_entry(
            [perfbench.SliceResult("e2", 1.0, (1.0,), 1)], mode,
            label=label)
    return perfbench.memory_entry(
        [perfbench.MemSliceResult("e2", 1_000_000, 50_000, 1)], mode,
        label=label)


# ---------------------------------------------------------------------------
# Artifact schema v2: rotation + v1 compatibility
# ---------------------------------------------------------------------------

def test_append_rotation_keeps_first_and_newest_per_group(tmp_path):
    target = tmp_path / "bench.json"
    for i in range(perfbench._KEEP_PER_GROUP + 10):
        perfbench.append_trajectory(
            target, make_entry(label=f"wall-{i}"))
    perfbench.append_trajectory(target, make_entry(metric="mem",
                                                   label="mem-0"))
    payload = json.loads(target.read_text())
    assert payload["version"] == 2
    labels = [entry["label"] for entry in payload["trajectory"]]
    # First-ever entry survives rotation; the next 9 wall entries aged out.
    assert labels[0] == "wall-0"
    assert "wall-9" not in labels
    assert labels[1] == "wall-10"
    assert labels[-1] == "mem-0"
    walls = [lab for lab in labels if lab.startswith("wall")]
    assert len(walls) == perfbench._KEEP_PER_GROUP + 1


def test_append_upgrades_v1_artifact(tmp_path):
    target = tmp_path / "bench.json"
    v1_entry = {"label": "old", "mode": "smoke",
                "slices": {"e2": {"wall_seconds": 2.0}}}
    target.write_text(json.dumps({
        "artifact": "repro-perf-bench", "version": 1,
        "trajectory": [v1_entry]}))
    perfbench.append_trajectory(target, make_entry(label="new"))
    payload = json.loads(target.read_text())
    assert payload["version"] == 2
    assert [e["label"] for e in payload["trajectory"]] == ["old", "new"]
    # The metric-less v1 entry still serves as a wall baseline.
    assert perfbench.baseline_entry(target, "smoke")["label"] == "new"


def test_append_rejects_unsupported_version(tmp_path):
    target = tmp_path / "bench.json"
    target.write_text(json.dumps({
        "artifact": "repro-perf-bench", "version": 99, "trajectory": []}))
    with pytest.raises(ConfigurationError):
        perfbench.append_trajectory(target, make_entry())


def test_baseline_entry_filters_by_metric(tmp_path):
    target = tmp_path / "bench.json"
    perfbench.append_trajectory(target, make_entry(label="w"))
    perfbench.append_trajectory(target, make_entry(metric="mem",
                                                   label="m"))
    assert perfbench.baseline_entry(target, "smoke")["label"] == "w"
    assert perfbench.baseline_entry(target, "smoke",
                                    metric="mem")["label"] == "m"
    with pytest.raises(ConfigurationError):
        perfbench.baseline_entry(target, "full", metric="mem")


def test_entries_tag_active_kernel_backend():
    from repro.sim import kernel
    entry = make_entry()
    assert entry["kernel"] == kernel.active_backend()
    assert make_entry(metric="mem")["kernel"] == kernel.active_backend()


def test_baseline_entry_filters_by_kernel(tmp_path):
    target = tmp_path / "bench.json"
    # Legacy entry with no kernel field: counts as pure Python.
    legacy = make_entry(label="legacy")
    legacy.pop("kernel")
    perfbench.append_trajectory(target, legacy)
    tagged = make_entry(label="tagged")
    tagged["kernel"] = "compiled"
    perfbench.append_trajectory(target, tagged)
    assert perfbench.baseline_entry(
        target, "smoke", kernel="python")["label"] == "legacy"
    assert perfbench.baseline_entry(
        target, "smoke", kernel="compiled")["label"] == "tagged"
    with pytest.raises(ConfigurationError, match="backend"):
        perfbench.baseline_entry(target, "smoke", kernel="martian")


# ---------------------------------------------------------------------------
# Memory gate
# ---------------------------------------------------------------------------

def test_memory_gate_passes_and_fails():
    baseline = make_entry(metric="mem")
    ok = [perfbench.MemSliceResult("e2", 1_200_000, 50_000, 1)]
    assert perfbench.check_memory_against_baseline(ok, baseline) == []
    fat = [perfbench.MemSliceResult("e2", 2_000_000, 50_000, 1)]
    failures = perfbench.check_memory_against_baseline(fat, baseline)
    assert len(failures) == 1 and "e2" in failures[0]
    # Slices missing from the baseline never fail on first appearance.
    new = [perfbench.MemSliceResult("e2-10k", 10**9, 50_000, 1)]
    assert perfbench.check_memory_against_baseline(new, baseline) == []
    with pytest.raises(ConfigurationError):
        perfbench.check_memory_against_baseline(ok, baseline, threshold=0)


def test_profile_slice_memory_smoke():
    result = perfbench.profile_slice_memory("smoke", "e13")
    assert result.name == "e13"
    assert result.traced_peak_bytes > 0
    assert result.ru_maxrss_kb > 0
    assert result.points == 1


# ---------------------------------------------------------------------------
# cProfile report
# ---------------------------------------------------------------------------

def test_profile_slice_reports_hot_functions():
    from repro.sim import kernel
    report = perfbench.profile_slice("smoke", "e13", top=5)
    assert f"[kernel={kernel.active_backend()}]" in report
    assert "e13" in report
    assert "cumulative" in report
    with pytest.raises(ConfigurationError):
        perfbench.profile_slice("smoke", "e13", top=0)


# ---------------------------------------------------------------------------
# Extended slices
# ---------------------------------------------------------------------------

def test_extended_slice_resolves_without_running():
    [point] = perfbench.slice_points("full", "e2-10k")
    assert point.label == "users=10000"
    assert point.param("users") == 10000


def test_extended_slices_off_by_default():
    assert perfbench._resolve_names("full", None, extended=False) == \
        ["e13", "e2", "e8"]
    assert "e2-10k" in perfbench._resolve_names("full", None,
                                                extended=True)


def test_unknown_slice_error_mentions_extended():
    with pytest.raises(ConfigurationError, match="extended"):
        perfbench.slice_points("full", "nope")
