"""Tests for the shared experiment plumbing."""

import pytest

from repro._errors import ConfigurationError
from repro.experiments.common import (
    ExperimentSettings,
    default_counts,
    percent,
    require_positive,
    run_store,
)
from repro.placement import unpinned
from repro.topology import CpuSet


def test_run_store_returns_result_deployment_store():
    settings = ExperimentSettings.fast(users=100, warmup=0.3, duration=0.8)
    result, deployment, store = run_store(settings)
    assert result.throughput > 0
    assert deployment.machine.spec.name == "medium-1s-64t"
    assert store.replica_counts()["webui"] == 2


def test_run_store_honours_online_and_allocation():
    settings = ExperimentSettings.fast(users=60, warmup=0.3, duration=0.8)
    machine = settings.machine()
    online = machine.cpus_in_node(0)
    counts = default_counts(settings)
    allocation = unpinned(machine, counts, online=online)
    result, deployment, __ = run_store(settings, machine=machine,
                                       online=online,
                                       allocation=allocation)
    assert deployment.online == online
    busy_outside = sum(deployment.scheduler.busy_time(i)
                       for i in machine.all_cpus() - online
                       if i in deployment.online)
    assert busy_outside == 0


def test_run_store_seed_override_changes_trace():
    settings = ExperimentSettings.fast(users=50, warmup=0.3, duration=0.8)
    a, __, __ = run_store(settings, seed=1)
    b, __, __ = run_store(settings, seed=2)
    c, __, __ = run_store(settings, seed=1)
    assert a.throughput == c.throughput
    assert a.latency_mean == c.latency_mean
    assert a.latency_mean != b.latency_mean


def test_default_counts_reflect_store_config():
    settings = ExperimentSettings.fast()
    counts = default_counts(settings)
    assert counts["webui"] == 2
    full_counts = default_counts(ExperimentSettings.full())
    assert full_counts["webui"] == 4
    assert set(counts) == {"webui", "auth", "persistence", "image",
                           "recommender", "db"}


def test_percent():
    assert percent(0.5) == 50.0


def test_require_positive():
    require_positive("x", 1.0)
    with pytest.raises(ConfigurationError):
        require_positive("x", 0.0)


def test_to_markdown_shape():
    from repro.experiments.common import ExperimentResult
    result = ExperimentResult("E0", "demo", [{"a": 1, "b": 2.5}],
                              notes=["hello"])
    markdown = result.to_markdown()
    assert "### E0 — demo" in markdown
    assert "| a | b |" in markdown
    assert "| 1 | 2.500 |" in markdown
    assert "* hello" in markdown
    empty = ExperimentResult("E0", "demo", [])
    assert "(no rows)" in empty.to_markdown()


def test_settings_machine_builds_preset():
    assert ExperimentSettings(preset="tiny").machine().n_logical_cpus == 8


def test_fast_settings_overrides():
    settings = ExperimentSettings.fast(seed=9, users=77)
    assert settings.seed == 9
    assert settings.users == 77
    assert settings.preset == "medium"
