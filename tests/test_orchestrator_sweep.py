"""End-to-end sweep behaviour: parity with ``run()``, the CLI verb,
progress telemetry, and the bench artifact."""

import io
import json

from repro import cli
from repro.experiments import ExperimentSettings
from repro.experiments import ablations, e1_platform, e2_load_scaling
from repro.orchestrator import (
    ProgressReporter,
    ResultCache,
    plan_sweep,
    run_sweep,
    sweep_experiments,
)
import pytest

from repro._errors import ConfigurationError
from repro.orchestrator.bench import (
    append_bench_entry,
    bench_entry,
    bench_payload,
)
from repro.report import build_report, sweep_section


def tiny():
    return ExperimentSettings.fast(preset="tiny", users=48,
                                   warmup=0.1, duration=0.3)


def test_every_cli_experiment_has_a_provider():
    assert sweep_experiments() == sorted(cli.EXPERIMENTS)


def test_sweep_matches_run_sequential_and_parallel():
    settings = tiny()
    expected = e2_load_scaling.run(settings).render()
    assert run_sweep("e2", settings, jobs=1).result.render() == expected
    assert run_sweep("e2", settings, jobs=4).result.render() == expected


def test_sweep_matches_run_for_ablation():
    settings = tiny()
    expected = ablations.run_code_sharing(settings).render()
    assert run_sweep("a1", settings, jobs=2).result.render() == expected


def test_sweep_matches_run_for_platform():
    settings = tiny()
    expected = e1_platform.run(settings).render()
    assert run_sweep("e1", settings).result.render() == expected


def test_cached_sweep_renders_identically(tmp_path):
    settings = tiny()
    cache = ResultCache(tmp_path)
    first = run_sweep("e2", settings, jobs=2, cache=cache)
    again = run_sweep("e2", settings, jobs=2,
                      cache=ResultCache(tmp_path))  # fresh process-alike
    assert first.result.render() == again.result.render()
    assert again.stats.executed == 0
    assert again.stats.cache_hits == len(plan_sweep("e2", settings))


def test_stats_account_for_every_point():
    settings = tiny()
    outcome = run_sweep("e2", settings, jobs=2)
    assert outcome.stats.points == len(plan_sweep("e2", settings))
    assert outcome.stats.executed == outcome.stats.points
    assert outcome.stats.cache_hits == 0
    assert outcome.stats.points_per_second() > 0
    assert len(outcome.outcomes) == outcome.stats.points
    stats_dict = outcome.stats.to_dict()
    assert stats_dict["experiment"] == "e2"
    assert json.dumps(stats_dict)  # JSON-native


def test_progress_reporter_events_and_lines():
    stream, log = io.StringIO(), io.StringIO()
    progress = ProgressReporter("e2", stream=stream, log=log)
    run_sweep("e2", tiny(), progress=progress)
    events = [json.loads(line) for line in log.getvalue().splitlines()]
    kinds = [event["event"] for event in events]
    assert kinds[0] == "sweep_start" and kinds[-1] == "sweep_end"
    assert kinds.count("point_done") == events[0]["total"]
    assert all(event["experiment"] == "e2" for event in events)
    human = stream.getvalue()
    assert "sweep complete" in human and "[e2]" in human


def test_bench_payload_shape():
    stats = run_sweep("e1", tiny()).stats
    entry = bench_payload([stats], jobs=3)
    assert entry["jobs"] == 3
    assert entry["experiments"][0]["experiment"] == "e1"
    totals = entry["totals"]
    assert totals["points"] >= 1
    assert json.dumps(entry)


def _fake_entry(experiment, jobs, marker):
    return {"recorded_at": marker, "jobs": jobs,
            "experiments": [{"experiment": experiment, "executed": 1}],
            "totals": {"points": 1}}


def test_bench_migrates_v1_snapshot(tmp_path):
    target = tmp_path / "bench.json"
    v1 = {"artifact": "repro-sweep-bench", "version": 1,
          "recorded_at": "2026-01-01T00:00:00Z", "jobs": 4,
          "experiments": [{"experiment": "e2", "executed": 9}],
          "totals": {"points": 9}}
    target.write_text(json.dumps(v1))
    append_bench_entry(target, _fake_entry("e2", 4, "new"))
    artifact = json.loads(target.read_text())
    assert artifact["version"] == 2
    # The v1 snapshot survives as the trajectory's first-ever entry.
    assert artifact["trajectory"][0]["recorded_at"] == "2026-01-01T00:00:00Z"
    assert artifact["trajectory"][0]["experiments"][0]["executed"] == 9
    assert artifact["trajectory"][1]["recorded_at"] == "new"
    assert "artifact" not in artifact["trajectory"][0]


def test_bench_rotation_keeps_first_and_newest_per_group(tmp_path):
    target = tmp_path / "bench.json"
    append_bench_entry(target, _fake_entry("e2", 1, "origin"))
    for index in range(25):
        append_bench_entry(target, _fake_entry("e2", 4, f"e2-{index}"))
    append_bench_entry(target, _fake_entry("e8", 4, "e8-only"))
    trajectory = json.loads(target.read_text())["trajectory"]
    markers = [entry["recorded_at"] for entry in trajectory]
    assert markers[0] == "origin"  # first-ever entry is immortal
    assert "e8-only" in markers  # a burst of e2 cannot evict e8 history
    e2_markers = [m for m in markers if m.startswith("e2-")]
    assert e2_markers == [f"e2-{index}" for index in range(5, 25)]


def test_bench_rejects_foreign_artifacts(tmp_path):
    target = tmp_path / "bench.json"
    target.write_text(json.dumps({"artifact": "something-else"}))
    with pytest.raises(ConfigurationError):
        append_bench_entry(target, _fake_entry("e2", 1, "x"))
    target.write_text(json.dumps({"artifact": "repro-sweep-bench",
                                  "version": 99}))
    with pytest.raises(ConfigurationError):
        append_bench_entry(target, _fake_entry("e2", 1, "x"))


def test_bench_entry_alias_is_stable():
    assert bench_payload is bench_entry


def test_report_includes_sweep_telemetry():
    settings = tiny()
    outcome = run_sweep("e1", settings)
    report = build_report([outcome.result], machine=settings.machine(),
                          sweep_stats=[outcome.stats.to_dict()])
    assert "## Sweep telemetry" in report
    assert "| e1 |" in report
    assert "Sweep telemetry" in sweep_section([outcome.stats.to_dict()])


def test_cli_sweep_end_to_end(tmp_path, capsys):
    bench = tmp_path / "bench.json"
    markdown = tmp_path / "report.md"
    argv = ["sweep", "e1", "--fast", "--jobs", "2", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
            "--bench", str(bench), "--markdown", str(markdown)]
    assert cli.main(argv) == 0
    first = capsys.readouterr().out
    assert "E1" in first

    artifact = json.loads(bench.read_text())
    assert artifact["artifact"] == "repro-sweep-bench"
    assert artifact["version"] == 2
    assert artifact["trajectory"][-1]["experiments"][0]["executed"] >= 1
    assert "## Sweep telemetry" in markdown.read_text()
    log_lines = (tmp_path / "cache" / "last-sweep.jsonl").read_text()
    assert '"sweep_start"' in log_lines and '"sweep_end"' in log_lines

    # Second invocation replays entirely from the cache and appends a
    # second trajectory entry rather than overwriting the first.
    assert cli.main(argv) == 0
    capsys.readouterr()
    replay = json.loads(bench.read_text())
    assert len(replay["trajectory"]) == 2
    assert replay["trajectory"][-1]["experiments"][0]["executed"] == 0
    assert replay["trajectory"][-1]["experiments"][0]["cache_hits"] >= 1


def test_cli_sweep_rejects_bad_jobs(capsys):
    assert cli.main(["sweep", "e1", "--fast", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
