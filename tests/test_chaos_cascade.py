"""Unit fixtures for the cascade analyzer: hand-built span tables.

A 3-service chain (web → mid → db) with exactly known latencies per
phase pins down depth, blast-radius, attribution, and time-to-recover
arithmetic — no simulator in the loop.
"""

import pytest

from repro._errors import AnalysisError
from repro.chaos.cascade import analyze_cascade
from repro.tracing.collector import TraceCollector

#: The analysis window and fault window every fixture uses.
WINDOW = (0.0, 10.0)
FAULT = (4.0, 6.0)


def chain_request(tracer, rid, start, web_lat, mid_lat, db_lat):
    """One web → mid → db request tree issued at ``start``."""
    tracer.add_span(rid, None, "web", "page", 0,
                    created_at=start, enqueued_at=start,
                    started_at=start, completed_at=start + web_lat)
    tracer.add_span(rid + 1, rid, "mid", "op", 1,
                    created_at=start, enqueued_at=start,
                    started_at=start, completed_at=start + mid_lat)
    tracer.add_span(rid + 2, rid + 1, "db", "q", 2,
                    created_at=start, enqueued_at=start,
                    started_at=start, completed_at=start + db_lat)


def build_chain_table(latencies_at):
    """A chain request every 0.1 s over the window; ``latencies_at(t)``
    returns the (web, mid, db) latency triple for issue time ``t``."""
    tracer = TraceCollector()
    rid = 0
    step = 0
    while True:
        start = step * 0.1
        if start >= WINDOW[1]:
            break
        web, mid, db = latencies_at(start)
        chain_request(tracer, rid, start, web, mid, db)
        rid += 3
        step += 1
    return tracer.table


def test_three_service_chain_depth_and_recovery():
    def latencies(start):
        if FAULT[0] <= start < FAULT[1]:
            return 2.0, 1.5, 1.0       # everything hurts during the fault
        if FAULT[1] <= start < 7.0:
            return 0.5, 1.5, 0.1       # mid lags one second behind
        return 0.5, 0.3, 0.1           # healthy baseline

    report = analyze_cascade(
        build_chain_table(latencies), target="db",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])

    assert report.blast_radius == ("db", "mid", "web")
    assert report.anomalies == ()
    # Depth counts hops upstream from the fault target along observed
    # edges: db is the target (1), mid calls it (2), web calls mid (3).
    depths = {impact.service: impact.depth for impact in report.impacts}
    assert depths == {"db": 1, "mid": 2, "web": 3}
    assert report.propagation_depth == 3
    # db and web return to baseline at the first post bin; mid stays
    # degraded through [6, 7), i.e. the first 3 of 12 bins over the
    # 4-second post window — sustained recovery starts at bin 3.
    recovery = {impact.service: impact.recovery_s
                for impact in report.impacts}
    assert recovery["db"] == pytest.approx(0.0)
    assert recovery["web"] == pytest.approx(0.0)
    assert recovery["mid"] == pytest.approx(1.0)
    assert report.recovered
    assert report.time_to_recover_s == pytest.approx(1.0)
    # Roots are constant 0.5 s pre and 2.0 s during: p99 ratio is 4x.
    assert report.root_p99_ratio == pytest.approx(4.0)
    assert report.spans == 300


def test_unrecovered_victim_is_reported():
    def latencies(start):
        if start >= FAULT[0]:
            return 0.5, 0.3, 1.0       # db never comes back
        return 0.5, 0.3, 0.1

    report = analyze_cascade(
        build_chain_table(latencies), target="db",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])
    assert report.blast_radius == ("db",)
    assert not report.recovered
    # The unrecovered victim's recovery time is the whole post window.
    assert report.time_to_recover_s == pytest.approx(4.0)


def test_degradation_outside_closure_is_an_anomaly():
    tracer = TraceCollector()
    rid = 0
    step = 0
    while True:
        start = step * 0.1
        if start >= WINDOW[1]:
            break
        during = FAULT[0] <= start < FAULT[1]
        # web calls mid → db (the faulted chain) and img (a sibling
        # that degrades for unrelated reasons).
        chain_request(tracer, rid, start, 0.5, 0.3,
                      1.0 if during else 0.1)
        tracer.add_span(rid + 3, rid, "img", "render", 3,
                        created_at=start, enqueued_at=start,
                        started_at=start,
                        completed_at=start + (0.8 if during else 0.05))
        rid += 4
        step += 1

    report = analyze_cascade(
        tracer.table, target="db",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])
    # img's requests never transit db, so its degradation cannot be
    # attributed to the db fault.
    assert "img" not in report.blast_radius
    assert report.anomalies == ("img",)
    assert report.blast_radius == ("db",)


def test_empty_table_yields_empty_report():
    report = analyze_cascade(
        TraceCollector().table, target="db",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])
    assert report.spans == 0
    assert report.blast_radius == ()
    assert report.propagation_depth == 0
    assert report.time_to_recover_s == 0.0
    assert report.recovered
    assert report.root_p99_ratio == 1.0


def test_single_span_table():
    tracer = TraceCollector()
    tracer.add_span(0, None, "web", "page", 0,
                    created_at=1.0, enqueued_at=1.0,
                    started_at=1.0, completed_at=1.5)
    report = analyze_cascade(
        tracer.table, target="web",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])
    # One pre-fault span and nothing during: no degradation to report.
    assert report.blast_radius == ()
    assert report.anomalies == ()
    assert report.recovered


def test_no_fault_window_is_the_healthy_control():
    def latencies(start):
        return 0.5, 0.3, 0.1

    report = analyze_cascade(
        build_chain_table(latencies), target="web",
        window_start=WINDOW[0], window_end=WINDOW[1])
    assert report.blast_radius == ()
    assert report.propagation_depth == 0
    assert report.recovered
    assert report.root_p99_ratio == 1.0


def test_unobserved_target_attributes_nothing():
    def latencies(start):
        if FAULT[0] <= start < FAULT[1]:
            return 2.0, 1.5, 1.0
        return 0.5, 0.3, 0.1

    report = analyze_cascade(
        build_chain_table(latencies), target="ghost",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])
    # Degradation is real but cannot be pinned on a service that never
    # served a traced request — everything lands in anomalies.
    assert report.blast_radius == ()
    assert set(report.anomalies) == {"db", "mid", "web"}


def test_fabric_target_attributes_every_service_at_depth_one():
    def latencies(start):
        if FAULT[0] <= start < FAULT[1]:
            return 2.0, 1.5, 1.0
        return 0.5, 0.3, 0.1

    report = analyze_cascade(
        build_chain_table(latencies), target="*",
        window_start=WINDOW[0], window_end=WINDOW[1],
        fault_start=FAULT[0], fault_end=FAULT[1])
    assert report.blast_radius == ("db", "mid", "web")
    assert report.propagation_depth == 1
    assert report.anomalies == ()


def test_window_and_fault_validation():
    table = TraceCollector().table
    with pytest.raises(AnalysisError):
        analyze_cascade(table, target="db",
                        window_start=5.0, window_end=5.0)
    with pytest.raises(AnalysisError):
        analyze_cascade(table, target="db",
                        window_start=0.0, window_end=10.0,
                        fault_start=4.0)
    tracer = TraceCollector()
    tracer.add_span(0, None, "web", "page", 0, created_at=1.0,
                    enqueued_at=1.0, started_at=1.0, completed_at=1.5)
    with pytest.raises(AnalysisError):
        analyze_cascade(tracer.table, target="web",
                        window_start=0.0, window_end=10.0,
                        fault_start=6.0, fault_end=4.0)
