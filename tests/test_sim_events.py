"""Unit tests for event primitives: triggering, conditions, callbacks."""

import pytest

from repro._errors import SimulationError
from repro.sim import AllOf, AnyOf, Simulator


def test_event_lifecycle_flags():
    sim = Simulator()
    event = sim.event()
    assert not event.triggered and not event.processed
    event.succeed(7)
    assert event.triggered and not event.processed
    sim.run()
    assert event.processed
    assert event.ok
    assert event.value == 7


def test_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        __ = event.value


def test_double_succeed_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_fail_then_succeed_raises():
    sim = Simulator()
    event = sim.event()
    event.defuse()
    event.fail(ValueError("x"))
    with pytest.raises(SimulationError):
        event.succeed()


def test_fail_requires_exception_instance():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_callbacks_receive_event():
    sim = Simulator()
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed(3)
    sim.run()
    assert seen == [3]


# ---------------------------------------------------------------------------
# Condition events
# ---------------------------------------------------------------------------

def test_allof_waits_for_all():
    sim = Simulator()
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(3.0, value="b")
    done_at = []

    def proc():
        values = yield AllOf(sim, [a, b])
        done_at.append((sim.now, sorted(values.values())))

    sim.process(proc())
    sim.run()
    assert done_at == [(3.0, ["a", "b"])]


def test_anyof_fires_on_first():
    sim = Simulator()
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(3.0, value="b")
    done_at = []

    def proc():
        values = yield AnyOf(sim, [a, b])
        done_at.append((sim.now, list(values.values())))

    sim.process(proc())
    sim.run()
    assert done_at == [(1.0, ["a"])]


def test_and_operator_builds_allof():
    sim = Simulator()
    a = sim.timeout(1.0)
    b = sim.timeout(2.0)
    condition = a & b
    assert isinstance(condition, AllOf)
    sim.run()
    assert condition.triggered


def test_or_operator_builds_anyof():
    sim = Simulator()
    a = sim.timeout(1.0)
    b = sim.timeout(2.0)
    condition = a | b
    assert isinstance(condition, AnyOf)
    sim.run()
    assert condition.triggered


def test_empty_allof_succeeds_immediately():
    sim = Simulator()
    condition = AllOf(sim, [])
    sim.run()
    assert condition.triggered and condition.ok
    assert condition.value == {}


def test_allof_fails_if_component_fails():
    sim = Simulator()
    a = sim.timeout(1.0)
    b = sim.event()
    caught = []

    def proc():
        try:
            yield AllOf(sim, [a, b])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.call_in(2.0, lambda: b.fail(ValueError("component died")))
    sim.run()
    assert caught == ["component died"]


def test_anyof_value_contains_only_succeeded():
    sim = Simulator()
    a = sim.timeout(1.0, value="fast")
    b = sim.timeout(9.0, value="slow")
    condition = AnyOf(sim, [a, b])
    sim.run(until=2.0)
    assert condition.triggered
    assert list(condition.value.values()) == ["fast"]


def test_condition_rejects_foreign_events():
    sim1 = Simulator()
    sim2 = Simulator()
    a = sim1.event()
    b = sim2.event()
    with pytest.raises(SimulationError):
        AllOf(sim1, [a, b])


def test_late_failure_after_anyof_resolution_is_defused():
    sim = Simulator()
    a = sim.timeout(1.0, value="fast")
    b = sim.event()
    AnyOf(sim, [a, b])
    sim.call_in(5.0, lambda: b.fail(ValueError("late")))
    # Must not escalate: the condition already resolved and claims it.
    sim.run()
