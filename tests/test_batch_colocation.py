"""Tests for the batch co-runner workload and the E12 experiment."""

import pytest

from repro._errors import ConfigurationError, WorkloadError
from repro._units import mib, ms
from repro.experiments import ExperimentSettings
from repro.experiments import e12_colocation
from repro.memory import WorkloadProfile
from repro.services import Deployment
from repro.topology import CpuSet, medium_machine, tiny_machine
from repro.workload import BatchKernelWorkload


def stream_profile():
    return WorkloadProfile("streamer", code_bytes=mib(0.2),
                           data_bytes=mib(48.0), mem_intensity=0.9,
                           frontend_intensity=0.05)


def test_batch_workload_validation():
    deployment = Deployment(tiny_machine(), seed=0)
    with pytest.raises(WorkloadError):
        BatchKernelWorkload(deployment, stream_profile(), concurrency=0)
    with pytest.raises(WorkloadError):
        BatchKernelWorkload(deployment, stream_profile(),
                            burst_demand=0.0)
    workload = BatchKernelWorkload(deployment, stream_profile())
    workload.start()
    with pytest.raises(WorkloadError):
        workload.start()
    with pytest.raises(WorkloadError):
        workload.bursts_per_second()  # window never opened


def test_batch_workload_keeps_cpus_busy():
    deployment = Deployment(tiny_machine(), seed=0)
    workload = BatchKernelWorkload(deployment, stream_profile(),
                                   concurrency=4, burst_demand=ms(2.0))
    workload.start()
    deployment.run(until=0.5)
    workload.start_window()
    deployment.run(until=1.5)
    rate = workload.bursts_per_second()
    # 4 threads of 2ms bursts → up to ~2000/s; boosted cores go faster.
    assert rate > 500


def test_batch_workload_respects_affinity():
    deployment = Deployment(tiny_machine(), seed=0)
    mask = CpuSet([0, 4])  # one physical core
    workload = BatchKernelWorkload(deployment, stream_profile(),
                                   affinity=mask, concurrency=4,
                                   burst_demand=ms(1.0))
    workload.start()
    deployment.run(until=1.0)
    outside = deployment.machine.all_cpus() - mask
    assert sum(deployment.scheduler.busy_time(i) for i in outside) == 0.0


def test_batch_workload_pressures_memory_model():
    deployment = Deployment(tiny_machine(), seed=0)
    before = deployment.memory_model.data_pressure(0)
    BatchKernelWorkload(deployment, stream_profile())
    assert deployment.memory_model.data_pressure(0) > before


def test_e12_rejects_small_machines():
    with pytest.raises(ConfigurationError):
        e12_colocation.run(ExperimentSettings(preset="tiny"))


def test_e12_structure_on_small_machine():
    """Fast-mode check of E12's mechanics only: the neighbor hurts, and
    all three configurations measure cleanly.  The containment claim
    (partitioned ≫ shared) depends on the interference being large
    relative to the sacrificed capacity, which needs the 16-CCX machine
    — benchmarks/test_e12_colocation.py asserts it at paper scale."""
    settings = ExperimentSettings.fast(users=400, warmup=0.6, duration=1.2)
    result = e12_colocation.run(settings, neighbor_concurrency=8)
    by_config = {row["config"]: row for row in result.rows}
    alone = by_config["store alone"]["store_rps"]
    shared = by_config["shared, both unpinned"]["store_rps"]
    partitioned = by_config["partitioned (CCX-aware)"]["store_rps"]
    assert shared < alone  # the neighbor hurts
    assert partitioned > 0
    assert by_config["shared, both unpinned"]["neighbor_bursts_per_s"] > 0
    assert by_config["store alone"]["neighbor_bursts_per_s"] == 0.0
    assert by_config["store alone"]["store_vs_alone"] == 1.0
