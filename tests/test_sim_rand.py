"""Unit tests and property tests for named random streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_name_reproduces():
    a = RandomStreams(seed=7).stream("users")
    b = RandomStreams(seed=7).stream("users")
    assert a.random(10).tolist() == b.random(10).tolist()


def test_different_names_are_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("users").random(10)
    b = streams.stream("services").random(10)
    assert a.tolist() != b.tolist()


def test_stream_is_cached():
    streams = RandomStreams(seed=7)
    assert streams.stream("x") is streams.stream("x")


def test_consuming_one_stream_does_not_shift_another():
    reference = RandomStreams(seed=3).stream("b").random(5).tolist()
    streams = RandomStreams(seed=3)
    streams.stream("a").random(1000)  # burn a lot of stream "a"
    assert streams.stream("b").random(5).tolist() == reference


def test_exponential_positive():
    streams = RandomStreams(seed=1)
    draws = [streams.exponential("t", 2.0) for __ in range(100)]
    assert all(d > 0 for d in draws)
    assert abs(np.mean(draws) - 2.0) < 0.6


def test_lognormal_mean_cv_zero_cv_is_deterministic():
    streams = RandomStreams(seed=1)
    assert streams.lognormal_mean_cv("t", 3.0, 0.0) == 3.0


def test_lognormal_mean_cv_matches_requested_mean():
    streams = RandomStreams(seed=1)
    draws = [streams.lognormal_mean_cv("t", 5.0, 0.5) for __ in range(4000)]
    assert abs(np.mean(draws) - 5.0) < 0.25


def test_lognormal_rejects_bad_parameters():
    streams = RandomStreams(seed=1)
    with pytest.raises(ValueError):
        streams.lognormal_mean_cv("t", -1.0, 0.5)
    with pytest.raises(ValueError):
        streams.lognormal_mean_cv("t", 1.0, -0.5)


def test_choice_index_respects_zero_weights():
    streams = RandomStreams(seed=1)
    draws = {streams.choice_index("c", [0.0, 1.0, 0.0]) for __ in range(50)}
    assert draws == {1}


def test_choice_index_rejects_all_zero():
    streams = RandomStreams(seed=1)
    with pytest.raises(ValueError):
        streams.choice_index("c", [0.0, 0.0])


def test_fork_produces_independent_streams():
    root = RandomStreams(seed=9)
    child = root.fork("child")
    a = root.stream("x").random(5).tolist()
    b = child.stream("x").random(5).tolist()
    assert a != b


def test_fork_is_reproducible():
    a = RandomStreams(seed=9).fork("child").stream("x").random(5).tolist()
    b = RandomStreams(seed=9).fork("child").stream("x").random(5).tolist()
    assert a == b


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       name=st.text(min_size=1, max_size=20))
def test_property_stream_reproducibility(seed, name):
    a = RandomStreams(seed=seed).stream(name).random(3).tolist()
    b = RandomStreams(seed=seed).stream(name).random(3).tolist()
    assert a == b


@settings(max_examples=50, deadline=None)
@given(mean=st.floats(min_value=0.01, max_value=100.0),
       cv=st.floats(min_value=0.0, max_value=3.0))
def test_property_lognormal_always_positive(mean, cv):
    streams = RandomStreams(seed=0)
    assert streams.lognormal_mean_cv("t", mean, cv) > 0


# ----------------------------------------------------------------------
# Stream-key aliasing guards
# ----------------------------------------------------------------------
def test_crc_colliding_stream_names_raise():
    # "plumless" and "buckeroo" are a classic crc32-colliding pair; two
    # distinct names must never silently share a generator.
    import zlib

    from repro._errors import ConfigurationError

    assert zlib.crc32(b"plumless") == zlib.crc32(b"buckeroo")
    streams = RandomStreams(seed=1)
    streams.stream("plumless")
    with pytest.raises(ConfigurationError, match="collision"):
        streams.stream("buckeroo")


def test_same_stream_name_is_not_a_collision():
    streams = RandomStreams(seed=1)
    assert streams.stream("users") is streams.stream("users")


def test_fork_name_deriving_parent_seed_raises():
    from repro._errors import ConfigurationError

    # crc32(b"") == 0, so the fork's seed would equal the parent's.
    with pytest.raises(ConfigurationError, match="parent"):
        RandomStreams(seed=9).fork("")


def test_crc_colliding_fork_names_raise():
    from repro._errors import ConfigurationError

    root = RandomStreams(seed=9)
    root.fork("plumless")
    with pytest.raises(ConfigurationError, match="collision"):
        root.fork("buckeroo")


def test_fork_same_name_is_reproducible_not_a_collision():
    root = RandomStreams(seed=9)
    a = root.fork("child").stream("x").random(3).tolist()
    b = root.fork("child").stream("x").random(3).tolist()
    assert a == b
