"""Unit tests for the memory-system performance model."""

import pytest

from repro._errors import ConfigurationError
from repro._units import mib
from repro.cpu import TaskGroup
from repro.memory import MemoryConfig, MemorySystemModel, WorkloadProfile
from repro.memory.system import _miss_fraction
from repro.topology import small_numa_machine, tiny_machine


def profile(name="svc", code=mib(2), data=mib(4), mem=0.5, fe=0.5):
    return WorkloadProfile(name=name, code_bytes=code, data_bytes=data,
                           mem_intensity=mem, frontend_intensity=fe)


def group_for(machine, prof, name=None, home_node=0, affinity=None):
    return TaskGroup(name or prof.name,
                     affinity or machine.all_cpus(),
                     profile=prof, home_node=home_node)


def test_miss_fraction_zero_when_fits():
    assert _miss_fraction(0.5) == 0.0
    assert _miss_fraction(1.0) == 0.0


def test_miss_fraction_grows_smoothly():
    assert _miss_fraction(2.0) == pytest.approx(0.5)
    assert _miss_fraction(4.0) == pytest.approx(0.75)
    assert 0 < _miss_fraction(1.1) < _miss_fraction(1.2)


def test_unregistered_group_sees_no_inflation():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    group = group_for(machine, profile())
    breakdown = model.breakdown(group, 0, 0)
    assert breakdown.total == 1.0


def test_small_footprint_on_one_ccx_no_inflation():
    machine = tiny_machine()  # 16 MiB L3 per CCX
    model = MemorySystemModel(machine)
    group = group_for(machine, profile(code=mib(1), data=mib(2)))
    model.register(group, [0])
    breakdown = model.breakdown(group, 0, 0)
    assert breakdown.total == pytest.approx(1.0)
    assert breakdown.data_pressure < 1.0
    assert breakdown.code_pressure < 1.0


def test_oversubscribed_ccx_inflates():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    big = profile(code=mib(10), data=mib(40))
    group = group_for(machine, big)
    model.register(group, [0])
    breakdown = model.breakdown(group, 0, 0)
    assert breakdown.total > 1.0
    assert breakdown.data_component > 0
    assert breakdown.code_component > 0


def test_same_service_replicas_share_code():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    prof = profile(code=mib(8), data=mib(1))
    a = group_for(machine, prof, name="svc")
    b = group_for(machine, prof, name="svc")
    model.register(a, [0])
    code_single = model.code_pressure(0)
    model.register(b, [0])
    # Same profile name → code counted once.
    assert model.code_pressure(0) == pytest.approx(code_single)


def test_different_services_do_not_share_code():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    a = group_for(machine, profile(name="svc-a", code=mib(8)))
    b = group_for(machine, profile(name="svc-b", code=mib(8)))
    model.register(a, [0])
    code_single = model.code_pressure(0)
    model.register(b, [0])
    assert model.code_pressure(0) == pytest.approx(2 * code_single)


def test_data_always_adds_per_instance():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    prof = profile(data=mib(4))
    a = group_for(machine, prof, name="svc")
    b = group_for(machine, prof, name="svc")
    model.register(a, [0])
    single = model.data_pressure(0)
    model.register(b, [0])
    assert model.data_pressure(0) == pytest.approx(2 * single)


def test_unpinned_instance_pressures_every_ccx_with_drag():
    machine = tiny_machine()  # 2 CCXs
    config = MemoryConfig(migration_drag=0.1)
    model = MemorySystemModel(machine, config)
    group = group_for(machine, profile(data=mib(4)))
    model.register_for_affinity(group)  # machine-wide affinity
    for ccx in range(len(machine.ccxs)):
        assert model._data_by_ccx[ccx] == pytest.approx(mib(4) * 1.1)


def test_pinned_instance_pressures_only_its_ccx():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    group = TaskGroup("svc", machine.cpus_in_ccx(0), profile=profile())
    model.register_for_affinity(group)
    assert model._data_by_ccx[0] > 0
    assert model._data_by_ccx[1] == 0


def test_numa_penalty_only_when_remote():
    machine = small_numa_machine()  # 2 sockets
    model = MemorySystemModel(machine)
    group = group_for(machine, profile(mem=0.8), home_node=0)
    model.register(group, [0])
    local = model.breakdown(group, 0, 0)
    remote = model.breakdown(group, 0, 1)
    assert local.numa_component == 0.0
    assert remote.numa_component > 0.0
    assert remote.total > local.total


def test_numa_penalty_scales_with_mem_intensity():
    machine = small_numa_machine()
    model = MemorySystemModel(machine)
    light = group_for(machine, profile(name="light", mem=0.1), home_node=0)
    heavy = group_for(machine, profile(name="heavy", mem=0.9), home_node=0)
    model.register(light, [0])
    model.register(heavy, [0])
    assert (model.breakdown(heavy, 0, 1).numa_component
            > model.breakdown(light, 0, 1).numa_component)


def test_deregister_restores_pressure():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    a = group_for(machine, profile(name="a"))
    b = group_for(machine, profile(name="b"))
    model.register(a, [0])
    before = (model.data_pressure(0), model.code_pressure(0))
    model.register(b, [0])
    model.deregister(b)
    after = (model.data_pressure(0), model.code_pressure(0))
    assert after == pytest.approx(before)


def test_deregister_shared_code_keeps_it_while_replicas_remain():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    prof = profile(code=mib(8))
    a = group_for(machine, prof, name="svc")
    b = group_for(machine, prof, name="svc")
    model.register(a, [0])
    model.register(b, [0])
    with_both = model.code_pressure(0)
    model.deregister(a)
    assert model.code_pressure(0) == pytest.approx(with_both)
    model.deregister(b)
    assert model.code_pressure(0) == 0.0


def test_register_validation():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    no_profile = TaskGroup("bare", machine.all_cpus())
    with pytest.raises(ConfigurationError):
        model.register(no_profile, [0])
    group = group_for(machine, profile())
    with pytest.raises(ConfigurationError):
        model.register(group, [])
    with pytest.raises(ConfigurationError):
        model.register(group, [99])
    model.register(group, [0])
    with pytest.raises(ConfigurationError):
        model.register(group, [0])  # double registration
    with pytest.raises(ConfigurationError):
        model.deregister(no_profile)


def test_inflation_cache_invalidated_on_registration():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    group = group_for(machine, profile(data=mib(4)))
    model.register(group, [0])

    class FakeBurst:
        def __init__(self, g):
            self.group = g

    cpu = machine.cpu(0)
    first = model.cpi_inflation(FakeBurst(group), cpu)
    # Add a huge tenant on the same CCX → inflation must change.
    hog = group_for(machine, profile(name="hog", data=mib(200)))
    model.register(hog, [0])
    second = model.cpi_inflation(FakeBurst(group), cpu)
    assert second > first


def test_config_validation():
    with pytest.raises(ConfigurationError):
        MemoryConfig(code_share=0.0)
    with pytest.raises(ConfigurationError):
        MemoryConfig(l3_miss_weight=-1.0)
    with pytest.raises(ConfigurationError):
        MemoryConfig(bandwidth_capacity=0.0)
    with pytest.raises(ConfigurationError):
        MemoryConfig(bandwidth_weight=-1.0)


def test_code_sharing_ablation_counts_code_per_instance():
    machine = tiny_machine()
    model = MemorySystemModel(machine,
                              MemoryConfig(share_code=False))
    prof = profile(code=mib(8), data=mib(1))
    a = group_for(machine, prof, name="svc")
    b = group_for(machine, prof, name="svc")
    model.register(a, [0])
    single = model.code_pressure(0)
    model.register(b, [0])
    assert model.code_pressure(0) == pytest.approx(2 * single)
    model.deregister(a)
    assert model.code_pressure(0) == pytest.approx(single)


class _Burst:
    def __init__(self, group):
        self.group = group


def test_bandwidth_model_disabled_by_default():
    machine = tiny_machine()
    model = MemorySystemModel(machine)
    group = group_for(machine, profile(mem=1.0))
    model.register(group, [0])
    cpu = machine.cpu(0)
    before = model.cpi_inflation(_Burst(group), cpu)
    for __ in range(50):
        model.on_burst_start(_Burst(group), cpu)
    assert model.cpi_inflation(_Burst(group), cpu) == pytest.approx(before)


def test_bandwidth_congestion_inflates_beyond_capacity():
    machine = tiny_machine()
    model = MemorySystemModel(
        machine, MemoryConfig(bandwidth_capacity=2.0,
                              bandwidth_weight=1.0))
    group = group_for(machine, profile(mem=1.0, data=mib(1)))
    model.register(group, [0])
    cpu = machine.cpu(0)
    burst = _Burst(group)
    base = model.cpi_inflation(burst, cpu)
    model.on_burst_start(burst, cpu)
    model.on_burst_start(burst, cpu)
    assert model.cpi_inflation(burst, cpu) == pytest.approx(base)  # at cap
    model.on_burst_start(burst, cpu)  # load 3 > capacity 2
    congested = model.cpi_inflation(burst, cpu)
    assert congested > base
    assert congested == pytest.approx(base + 1.0 * 1.0 * 0.5)
    model.on_burst_complete(burst, cpu, 0.001)
    assert model.cpi_inflation(burst, cpu) == pytest.approx(base)


def test_bandwidth_term_scales_with_mem_intensity():
    machine = tiny_machine()
    model = MemorySystemModel(
        machine, MemoryConfig(bandwidth_capacity=1.0))
    light = group_for(machine, profile(name="light", mem=0.1))
    heavy = group_for(machine, profile(name="heavy", mem=0.9))
    model.register(light, [0])
    model.register(heavy, [0])
    model._running_mem_load = 3.0
    assert (model.bandwidth_congestion_term(heavy.profile)
            > model.bandwidth_congestion_term(light.profile))


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        WorkloadProfile("bad", -1, 0, 0.5, 0.5)
    with pytest.raises(ConfigurationError):
        WorkloadProfile("bad", 0, 0, 1.5, 0.5)
    with pytest.raises(ConfigurationError):
        WorkloadProfile("bad", 0, 0, 0.5, 0.5, base_ipc=0.0)
    with pytest.raises(ConfigurationError):
        WorkloadProfile("bad", 0, 0, 0.5, 0.5, l3_mpki=-1.0)


def test_profile_total_bytes():
    prof = profile(code=100, data=200)
    assert prof.total_bytes == 300
