"""Kernel-backend parametrization shared by backend-sensitive suites.

``backend_params()`` yields one param per registered event-loop backend.
The compiled backend is *always* listed: when the extension is built the
tests run against it, and when it is absent the param shows up as an
explicit skip — so a CI job that must exercise the compiled path fails
visibly (skipped test) rather than silently testing pure Python twice.
"""

import pytest

from repro.sim import kernel


def backend_params() -> list:
    params = [pytest.param("python", id="kernel-python")]
    if kernel.compiled_available():
        params.append(pytest.param("compiled", id="kernel-compiled"))
    else:
        params.append(pytest.param(
            "compiled", id="kernel-compiled",
            marks=pytest.mark.skip(
                reason="repro.sim._ckernel not built; run "
                       "'python setup.py build_ext --inplace'")))
    return params
