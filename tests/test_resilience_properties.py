"""Property tests: resilience invariants under random faults + configs.

Each example builds a small echo system, arms a randomly drawn
:class:`ResilienceConfig`, injects a randomly drawn fault schedule, and
drives it with protected callers.  Whatever happens — kills, stalls,
slow replicas, breaker trips, exhausted retries — three invariants must
hold once the simulation drains:

* **conservation** — every logical call resolves exactly once, as a
  success, a degraded fallback, or an error: no lost or double-resolved
  requests;
* **bounded amplification** — retries never exceed the retry budget's
  fraction of calls, so retry storms cannot multiply load unboundedly;
* **routing hygiene** — the fabric never delivers to a replica that
  stopped accepting while another accepting replica exists.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import ms
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.services import Deployment, ResilienceConfig, ServiceSpec
from repro.sim import kernel
from repro.topology import tiny_machine
from repro.workload import FaultInjector

from tests._kernels import backend_params

#: Every property runs on every kernel backend: the resilience layer is
#: the most control-flow-dense consumer of the event loop (timeouts,
#: cancellations, interrupts under random faults), so it doubles as a
#: randomized equivalence oracle for the compiled kernel.
BACKENDS = backend_params()

STOP_AT = 0.4


def build_system(seed, replicas, config, fallback):
    deployment = Deployment(tiny_machine(), seed=seed,
                            smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel(),
                            resilience=config)
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.1, 0.1)
    spec = ServiceSpec("svc", profile, workers=2)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(ms(1.0))
        return "ok"

    if fallback:
        spec.add_fallback("op", "static")
    for __ in range(replicas):
        deployment.add_instance(spec)
    return deployment


def drive(deployment, n_clients, outcomes):
    def client():
        sim = deployment.sim
        while sim.now < STOP_AT:
            done = deployment.dispatch("svc", "op")
            try:
                value = yield done
            except Exception:
                outcomes["err"] += 1
            else:
                outcomes["degraded" if value == "static" else "ok"] += 1
            yield sim.timeout(0.004)

    for __ in range(n_clients):
        deployment.sim.process(client())


configs = st.builds(
    ResilienceConfig,
    timeout=st.sampled_from([None, 0.004, 0.02, 0.1]),
    retries=st.integers(min_value=0, max_value=3),
    backoff_base=st.sampled_from([0.0, 0.002]),
    jitter=st.sampled_from([0.0, 0.2]),
    retry_budget=st.sampled_from([0.0, 0.1, 0.5, 10.0]),
    breaker_enabled=st.booleans(),
    breaker_failure_threshold=st.integers(min_value=1, max_value=4),
    breaker_recovery_time=st.sampled_from([0.02, 0.2]),
    degradation=st.booleans(),
)

# (kind, time, replica slot in [0, 1), extra knob in (0, 1])
fault_entries = st.lists(
    st.tuples(st.sampled_from(["slow", "pause"]),
              st.floats(min_value=0.01, max_value=0.3),
              st.floats(min_value=0.0, max_value=0.999),
              st.floats(min_value=0.01, max_value=1.0)),
    min_size=0, max_size=3)


def apply_faults(deployment, injector, replicas, entries, kill):
    for kind, time, slot, knob in entries:
        replica = int(slot * replicas)
        if kind == "slow":
            injector.slow_at(time, "svc", replica,
                             factor=4.0 + 96.0 * knob, duration=0.15)
        else:
            injector.pause_at(time, "svc", replica,
                              duration=0.05 + 0.15 * knob)
    if kill and replicas > 1:
        injector.kill_at(0.35, "svc", replica_index=0, restore_after=0.1)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       replicas=st.integers(min_value=1, max_value=3),
       config=configs,
       fallback=st.booleans(),
       entries=fault_entries,
       kill=st.booleans())
def test_property_conservation_and_budget(backend, seed, replicas, config,
                                          fallback, entries, kill):
    with kernel.use_backend(backend):
        deployment = build_system(seed, replicas, config, fallback)
        injector = FaultInjector(deployment)
        apply_faults(deployment, injector, replicas, entries, kill)
        outcomes = {"ok": 0, "degraded": 0, "err": 0}
        drive(deployment, n_clients=4, outcomes=outcomes)
        deployment.run()

    stats = deployment.resilience_stats
    if deployment.resilience is None:
        # Inert draw: callers went down the plain path; nothing to check
        # beyond "no resilience counters moved".
        assert stats.calls == 0
        return
    # Conservation: every logical call resolved exactly once, and the
    # callers observed exactly those resolutions.
    assert stats.resolved() == stats.calls
    assert stats.successes + stats.degraded + stats.errors == stats.calls
    assert outcomes["ok"] == stats.successes
    assert outcomes["err"] == stats.errors
    if fallback:
        assert outcomes["degraded"] == stats.degraded
    else:
        assert stats.degraded == 0
    # Bounded amplification: the budget gate held at every admission.
    assert stats.retries <= config.retry_budget * stats.calls + 1e-9
    assert stats.attempts == stats.calls + stats.retries
    # Timeouts only happen when a deadline is configured.
    if config.timeout is None:
        assert stats.timeouts == 0


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       replicas=st.integers(min_value=2, max_value=3),
       config=configs,
       entries=fault_entries)
def test_property_never_delivers_to_dead_replica_with_live_peers(
        backend, seed, replicas, config, entries):
    with kernel.use_backend(backend):
        deployment = build_system(seed, replicas, config, fallback=True)
        injector = FaultInjector(deployment)
        apply_faults(deployment, injector, replicas, entries, kill=True)
        violations = []
        original_deliver = deployment.rpc.deliver

        def spying_deliver(request, instance):
            peers = deployment.registry.instances_of(request.service_name)
            if (not instance.accepting
                    and any(p.accepting
                            for p in peers if p is not instance)):
                violations.append(
                    (deployment.sim.now, instance.instance_id))
            return original_deliver(request, instance)

        deployment.rpc.deliver = spying_deliver
        outcomes = {"ok": 0, "degraded": 0, "err": 0}
        drive(deployment, n_clients=4, outcomes=outcomes)
        deployment.run()
    assert violations == []
    assert sum(outcomes.values()) > 0
