"""Integration tests for the experiment harness (fast settings)."""

import dataclasses

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments import (
    ablations,
    e1_platform,
    e2_load_scaling,
    e3_core_scaling,
    e4_smt,
    e5_utilization,
    e6_service_scaling,
    e7_placement,
    e8_headline,
    e9_characterization,
    e10_numa,
    e11_latency_breakdown,
)
from repro.experiments.common import format_table
from repro.teastore.catalog import SERVICE_NAMES


def fast(**overrides):
    values = dict(users=250, warmup=0.5, duration=1.0)
    values.update(overrides)
    return ExperimentSettings.fast(**values)


def test_settings_profiles():
    full = ExperimentSettings.full()
    assert full.preset == "rome-1s"
    quick = ExperimentSettings.fast()
    assert quick.preset == "medium"
    assert quick.users < full.users


def test_store_config_sized_to_machine():
    assert ExperimentSettings.fast().store_config().replica_count("webui") == 2
    assert ExperimentSettings.full().store_config().replica_count("webui") == 4


def test_format_table_alignment_and_empty():
    assert format_table([]) == "(no rows)"
    table = format_table([{"a": 1, "b": 1.23456}, {"a": 200, "b": 7.0}])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.235" in table
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_e1_platform_rows():
    result = e1_platform.run(ExperimentSettings())
    attributes = {row["attribute"] for row in result.rows}
    assert "logical_cpus" in attributes
    logical = next(r for r in result.rows
                   if r["attribute"] == "logical_cpus")
    assert logical["value"] == 128
    assert "E1" in result.render()


def test_e2_load_scaling_monotone_then_saturating():
    result = e2_load_scaling.run(fast(), user_counts=(25, 100, 400))
    throughputs = result.column("throughput_rps")
    assert throughputs[0] < throughputs[-1]
    latencies = result.column("latency_mean_ms")
    assert latencies[-1] > latencies[0]  # saturation costs latency
    assert result.notes


def test_e3_core_scaling_speedup_grows():
    result = e3_core_scaling.run(fast(), cpu_counts=(16, 32, 64))
    speedups = result.column("speedup")
    assert speedups[0] == pytest.approx(1.0)
    assert speedups[-1] > 1.5
    efficiencies = result.column("efficiency")
    assert all(e <= 1.05 for e in efficiencies)


def test_e3_validates_cpu_counts():
    from repro._errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        e3_core_scaling.run(fast(), cpu_counts=(0,))
    with pytest.raises(ConfigurationError):
        e3_core_scaling.run(fast(), cpu_counts=(10_000,))


def test_e4_smt_gives_uplift():
    result = e4_smt.run(fast(users=600))
    uplifts = result.column("uplift_vs_smt_off")
    assert uplifts[0] == 1.0
    assert uplifts[1] > 1.05  # SMT on beats SMT off


def test_e5_utilization_covers_all_services_and_sums_to_one():
    result = e5_utilization.run(fast())
    services = set(result.column("service"))
    assert services == set(SERVICE_NAMES)
    shares = result.column("cpu_share_pct")
    assert sum(shares) == pytest.approx(100.0)
    assert shares == sorted(shares, reverse=True)


def test_e6_service_scaling_webui_converts_ccxs_to_throughput():
    result = e6_service_scaling.run(
        fast(users=600),
        sweeps={"webui": (1, 2), "recommender": (1, 2)})
    webui = [r for r in result.rows if r["service"] == "webui"]
    recommender = [r for r in result.rows if r["service"] == "recommender"]
    webui_gain = webui[-1]["throughput_rps"] / webui[0]["throughput_rps"]
    recommender_gain = (recommender[-1]["throughput_rps"]
                        / recommender[0]["throughput_rps"])
    # WebUI is the heavy service: extra CCXs pay; the light Recommender
    # was never the bottleneck, so extra CCXs buy ~nothing.
    assert webui_gain > 1.10
    assert recommender_gain < webui_gain
    assert any("gains stop" in note for note in result.notes)


def test_e6_rejects_oversized_target():
    from repro._errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        e6_service_scaling.run(fast(), sweeps={"webui": (6,)})
    with pytest.raises(ConfigurationError):
        e6_service_scaling.run(fast(), sweeps={"ghost": (1,)})


def test_e7_placement_ccx_wins():
    result = e7_placement.run(fast(users=600))
    by_policy = {row["policy"]: row for row in result.rows}
    assert set(by_policy) == {"unpinned", "node_spread", "ccx_aware"}
    assert by_policy["unpinned"]["uplift_pct"] == pytest.approx(0.0)
    assert (by_policy["ccx_aware"]["throughput_rps"]
            >= by_policy["unpinned"]["throughput_rps"] * 0.95)


def test_e8_headline_runs_and_reports():
    result = e8_headline.run(fast(users=600))
    assert len(result.rows) == 2
    assert any("paper: +22%" in note for note in result.notes)
    configs = result.column("config")
    assert configs == ["tuned baseline", "optimized"]


def test_e8_measure_outcome_fields():
    outcome = e8_headline.measure(fast(users=600))
    assert outcome.baseline.throughput > 0
    assert outcome.optimized.throughput > 0
    assert -1.0 < outcome.throughput_uplift < 2.0
    assert outcome.allocation.replica_counts()["db"] == 1


def test_e9_characterization_contrast():
    result = e9_characterization.run(fast(users=400), kernel_bursts=40)
    classes = {row["workload"]: row for row in result.rows}
    assert len(result.rows) == 9  # 6 services + 3 kernels
    webui = classes["webui"]
    spec_int = classes["spec-int-like"]
    assert webui["ipc"] < spec_int["ipc"]
    assert webui["l1i_mpki"] > spec_int["l1i_mpki"]
    assert webui["frontend_bound"] > spec_int["frontend_bound"]


def test_e10_numa_remote_memory_costs_throughput():
    result = e10_numa.run(fast(preset="small", users=300))
    by_config = {row["config"]: row for row in result.rows}
    local = by_config["socket0 + local memory"]["throughput_rps"]
    remote = by_config["socket0 + remote memory"]["throughput_rps"]
    assert remote < local
    assert any("remote memory costs" in note for note in result.notes)


def test_e10_requires_multi_node():
    with pytest.raises(ValueError):
        e10_numa.run(fast(preset="medium"))


def test_e11_latency_breakdown_shares_sum_to_100():
    result = e11_latency_breakdown.run(fast(users=200),
                                       endpoints=("product", "checkout"))
    for endpoint in ("product", "checkout"):
        shares = [r["share_pct"] for r in result.rows
                  if r["endpoint"] == endpoint]
        assert sum(shares) == pytest.approx(100.0)
    assert any("spans" in note for note in result.notes)


def test_e11_db_latency_share_exceeds_its_cpu_share_on_checkout():
    """The tracing extension's point: the serialized DB write path
    contributes more *latency* on checkout than its CPU share suggests."""
    result = e11_latency_breakdown.run(fast(users=300),
                                       endpoints=("checkout",))
    shares = {r["service"]: r["share_pct"] for r in result.rows}
    assert shares["db"] > 25.0
    assert shares["db"] > shares["auth"]


def test_ablation_code_sharing_on_beats_off():
    result = ablations.run_code_sharing(fast(users=600))
    by_config = {row["config"]: row["throughput_rps"]
                 for row in result.rows}
    assert (by_config["code sharing on (real)"]
            >= by_config["code sharing off (ablated)"])


def test_ablation_frequency_boost_matters_at_low_occupancy():
    result = ablations.run_frequency_ablation(fast(users=600),
                                              cpu_counts=(8, 64))
    gains = result.column("boost_gain_pct")
    assert gains[0] > gains[-1] - 1e-9  # partial occupancy gains most
    assert gains[0] > 0


def test_ablation_bandwidth_tightening_costs_throughput():
    result = ablations.run_bandwidth_ablation(
        fast(users=600), capacities=(None, 6.0))
    relatives = result.column("relative")
    assert relatives[0] == 1.0
    assert relatives[-1] < 1.0


def test_ablation_smt_yield_monotone():
    result = ablations.run_smt_yield_ablation(
        fast(users=600), smt_yields=(1.0, 1.3))
    relatives = result.column("relative")
    assert relatives[0] == 1.0
    assert relatives[-1] >= 1.0


def test_experiment_result_render_and_column():
    result = e1_platform.run(ExperimentSettings(preset="tiny"))
    rendered = result.render()
    assert "[E1]" in rendered
    assert "attribute" in rendered
    assert len(result.column("attribute")) == len(result.rows)


def test_settings_are_immutable():
    settings = ExperimentSettings()
    with pytest.raises(dataclasses.FrozenInstanceError):
        settings.seed = 2  # type: ignore[misc]
