"""Deeper property tests for the CPU scheduler under random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CpuBurst, CpuScheduler, FlatFrequencyModel, SmtModel, TaskGroup
from repro.sim import Simulator
from repro.topology import CpuSet, small_numa_machine, tiny_machine

burst_plan = st.lists(
    st.tuples(
        st.floats(min_value=1e-5, max_value=0.005),   # demand
        st.floats(min_value=0.0, max_value=0.01),     # submit delay
        st.integers(min_value=0, max_value=7),        # affinity seed
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(plan=burst_plan)
def test_property_random_affinities_all_complete_inside_masks(plan):
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine,
                             smt_model=SmtModel(1.3),
                             frequency_model=FlatFrequencyModel())
    n = machine.n_logical_cpus
    bursts = []
    for demand, delay, affinity_seed in plan:
        # Derive a non-empty deterministic mask from the seed.
        members = [i for i in range(n) if (affinity_seed >> (i % 3)) & 1]
        mask = CpuSet(members) if members else CpuSet.single(affinity_seed)
        group = TaskGroup("g", mask)
        burst = CpuBurst(demand, group, sim.event())
        bursts.append((burst, mask))
        sim.call_in(delay, lambda b=burst: scheduler.submit(b))
    sim.run()
    for burst, mask in bursts:
        assert burst.finished_at is not None
        assert burst.cpu_index in mask
        assert burst.wall_time >= burst.demand * 0.999
        assert burst.started_at >= burst.submitted_at
    assert scheduler.queue_depth() == 0


@settings(max_examples=25, deadline=None)
@given(demands=st.lists(st.floats(min_value=1e-4, max_value=0.003),
                        min_size=5, max_size=40),
       smt_yield=st.floats(min_value=1.0, max_value=2.0))
def test_property_busy_time_bounded_by_makespan_times_cpus(demands,
                                                           smt_yield):
    sim = Simulator()
    machine = small_numa_machine()
    scheduler = CpuScheduler(sim, machine,
                             smt_model=SmtModel(smt_yield),
                             frequency_model=FlatFrequencyModel())
    group = TaskGroup("g", machine.all_cpus())
    for demand in demands:
        scheduler.submit(CpuBurst(demand, group, sim.event()))
    sim.run()
    makespan = sim.now
    total_busy = scheduler.total_busy_time()
    assert total_busy <= makespan * machine.n_logical_cpus + 1e-9
    # Executed demand can never exceed busy wall time (slowdowns only).
    assert sum(demands) <= total_busy + 1e-9


@settings(max_examples=25, deadline=None)
@given(demands=st.lists(st.floats(min_value=1e-4, max_value=0.002),
                        min_size=2, max_size=25),
       seed_mask=st.integers(min_value=1, max_value=255))
def test_property_pinned_work_never_leaks(demands, seed_mask):
    sim = Simulator()
    machine = tiny_machine()
    mask = CpuSet([i for i in range(8) if (seed_mask >> i) & 1])
    scheduler = CpuScheduler(sim, machine,
                             smt_model=SmtModel(1.3),
                             frequency_model=FlatFrequencyModel())
    group = TaskGroup("pinned", mask)
    for demand in demands:
        scheduler.submit(CpuBurst(demand, group, sim.event()))
    sim.run()
    outside = machine.all_cpus() - mask
    assert sum(scheduler.busy_time(i) for i in outside) == 0.0


@settings(max_examples=20, deadline=None)
@given(demands=st.lists(st.floats(min_value=1e-4, max_value=0.002),
                        min_size=3, max_size=20))
def test_property_deterministic_replay(demands):
    def run_once():
        sim = Simulator()
        machine = tiny_machine()
        scheduler = CpuScheduler(sim, machine)
        group = TaskGroup("g", machine.all_cpus())
        bursts = []
        for demand in demands:
            burst = CpuBurst(demand, group, sim.event())
            scheduler.submit(burst)
            bursts.append(burst)
        sim.run()
        return [(b.cpu_index, b.finished_at) for b in bursts]

    assert run_once() == run_once()
