"""Unit + integration tests for the TeaStore application model."""

import pytest

from repro._errors import ConfigurationError, WorkloadError
from repro.services import Deployment
from repro.teastore import (
    BROWSE_TRANSITIONS,
    MarkovSessionProfile,
    SERVICE_NAMES,
    TeaStoreConfig,
    browse_profile,
    build_teastore,
    service_profiles,
)
from repro.teastore.services import build_specs
from repro.topology import small_numa_machine, tiny_machine
from repro.workload import ClosedLoopWorkload, run_experiment


def small_config(**kwargs):
    """A store sized for the 32-lcpu test machine."""
    defaults = dict(
        replicas={"webui": 2, "auth": 1, "persistence": 1, "image": 1,
                  "recommender": 1, "db": 1},
        workers={"webui": 32, "auth": 8, "persistence": 16, "image": 8,
                 "recommender": 8, "db": 16},
    )
    defaults.update(kwargs)
    return TeaStoreConfig(**defaults)


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------

def test_config_defaults_cover_all_services():
    config = TeaStoreConfig()
    for name in SERVICE_NAMES:
        assert config.replica_count(name) >= 1
        assert config.worker_count(name) >= 1


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TeaStoreConfig(replicas={"ghost": 1})
    with pytest.raises(ConfigurationError):
        TeaStoreConfig(replicas={"webui": 0})
    with pytest.raises(ConfigurationError):
        TeaStoreConfig(demand_scale=0.0)
    with pytest.raises(ConfigurationError):
        TeaStoreConfig(image_cache_hit_rate=1.5)
    with pytest.raises(ConfigurationError):
        TeaStoreConfig(db_read_serial_fraction=-0.1)


def test_config_with_replicas_override():
    config = TeaStoreConfig().with_replicas(webui=8)
    assert config.replica_count("webui") == 8
    assert config.replica_count("db") == 1


# ---------------------------------------------------------------------------
# Profiles / session model
# ---------------------------------------------------------------------------

def test_browse_profile_states_match_webui_endpoints():
    profile = browse_profile()
    specs = build_specs()
    webui_endpoints = set(specs["webui"].endpoints)
    assert set(profile.states) <= webui_endpoints


def test_browse_transitions_rows_sum_to_one():
    for state, nexts in BROWSE_TRANSITIONS.items():
        assert sum(p for __, p in nexts) == pytest.approx(1.0)


def test_markov_profile_validation():
    with pytest.raises(WorkloadError):
        MarkovSessionProfile({"a": [("a", 0.5)]})  # doesn't sum to 1
    with pytest.raises(WorkloadError):
        MarkovSessionProfile({"a": [("b", 1.0)]})  # unknown target
    with pytest.raises(WorkloadError):
        MarkovSessionProfile({"a": [("a", 1.0)]}, start="z")
    with pytest.raises(WorkloadError):
        MarkovSessionProfile({"a": []})
    with pytest.raises(WorkloadError):
        MarkovSessionProfile(
            {"a": [("a", 1.5), ("b", -0.5)], "b": [("a", 1.0)]})


def test_markov_walk_visits_only_known_states():
    deployment = Deployment(tiny_machine(), seed=1)
    factory = browse_profile().session_factory(deployment)
    session = factory(0)
    states = {next(session)[1] for __ in range(200)}
    assert states <= set(BROWSE_TRANSITIONS)
    assert len(states) >= 4  # actually explores the profile


def test_markov_walks_differ_between_users_but_reproduce_per_seed():
    def walk(seed, user_id, n=20):
        deployment = Deployment(tiny_machine(), seed=seed)
        session = browse_profile().session_factory(deployment)(user_id)
        return [next(session)[1] for __ in range(n)]

    assert walk(1, 0) == walk(1, 0)
    assert walk(1, 0) != walk(1, 1) or walk(1, 0) != walk(1, 2)


def test_stationary_mix_dominated_by_browsing():
    mix = browse_profile().stationary_mix(n_steps=20_000)
    assert mix["category"] > mix["logout"]
    assert mix["product"] > mix["logout"]
    assert sum(mix.values()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Service specs / catalog
# ---------------------------------------------------------------------------

def test_profiles_exist_for_all_services():
    profiles = service_profiles()
    assert set(profiles) == set(SERVICE_NAMES)
    for name, profile in profiles.items():
        assert profile.name == name


def test_microservice_profiles_are_frontend_hungry():
    # The characterization contrast rests on these relationships.
    profiles = service_profiles()
    for name in ("webui", "auth", "persistence"):
        assert profiles[name].frontend_intensity >= 0.5
        assert profiles[name].l1i_mpki >= 20.0
        assert profiles[name].base_ipc <= 1.2


def test_build_specs_cover_expected_endpoints():
    specs = build_specs()
    assert set(specs) == set(SERVICE_NAMES)
    assert set(specs["webui"].endpoints) == {
        "home", "login", "category", "product", "add_to_cart", "logout",
        "cart_view", "checkout"}
    assert set(specs["db"].endpoints) == {"read", "write"}
    assert "recommend" in specs["recommender"].endpoints


# ---------------------------------------------------------------------------
# End-to-end store behaviour
# ---------------------------------------------------------------------------

def test_build_teastore_default_replicas():
    deployment = Deployment(small_numa_machine(), seed=0)
    store = build_teastore(deployment, small_config())
    counts = store.replica_counts()
    assert counts["webui"] == 2
    assert counts["db"] == 1
    assert len(deployment.instances) == sum(counts.values())


def test_store_replicas_unknown_service_raises():
    deployment = Deployment(small_numa_machine(), seed=0)
    store = build_teastore(deployment, small_config())
    with pytest.raises(ConfigurationError):
        store.replicas("ghost")


def test_placement_missing_service_raises():
    machine = small_numa_machine()
    deployment = Deployment(machine, seed=0)
    placement = {"webui": [(machine.all_cpus(), None)]}
    with pytest.raises(ConfigurationError):
        build_teastore(deployment, small_config(), placement=placement)


def test_placement_controls_replicas_and_affinity():
    machine = small_numa_machine()
    deployment = Deployment(machine, seed=0)
    placement = {
        name: [(machine.cpus_in_node(0), 0)]
        for name in SERVICE_NAMES
    }
    placement["webui"] = [(machine.cpus_in_node(0), 0),
                          (machine.cpus_in_node(1), 1)]
    store = build_teastore(deployment, small_config(), placement=placement)
    assert store.replica_counts()["webui"] == 2
    assert store.replicas("webui")[1].home_node == 1
    assert store.replicas("db")[0].affinity == machine.cpus_in_node(0)


def test_single_browse_request_end_to_end():
    deployment = Deployment(small_numa_machine(), seed=0)
    build_teastore(deployment, small_config())
    done = deployment.dispatch("webui", "product")
    deployment.run()
    assert done.ok
    assert done.value == "<product>"
    # The product page touched auth, persistence, db, image, recommender.
    for service in ("auth", "persistence", "db", "image", "recommender"):
        instances = deployment.registry.instances_of(service)
        assert sum(i.completed for i in instances) >= 1


def test_store_under_load_produces_sane_metrics():
    deployment = Deployment(small_numa_machine(), seed=3)
    store = build_teastore(deployment, small_config())
    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=32, think_time=0.05)
    result = run_experiment(deployment, workload, warmup=1.0, duration=3.0)
    assert result.throughput > 50
    assert result.errors == 0
    assert 0.0 < result.machine_utilization <= 1.0
    # WebUI renders dominate CPU consumption, as in the paper's breakdown.
    share = result.service_share
    assert share["webui"] == max(share.values())
    assert sum(share.values()) == pytest.approx(1.0)
    assert share["db"] > 0


def test_db_serialization_caps_persistence_scaling():
    """More DB replicas with a serial fraction still beat one, but a high
    serial fraction must cap throughput well below linear."""
    def run(serial_fraction):
        deployment = Deployment(small_numa_machine(), seed=5)
        config = small_config(
            db_read_serial_fraction=serial_fraction,
            db_write_serial_fraction=serial_fraction)
        store = build_teastore(deployment, config)
        workload = ClosedLoopWorkload(
            deployment, store.browse_session_factory(),
            n_users=64, think_time=0.0)
        return run_experiment(deployment, workload,
                              warmup=1.0, duration=2.0).throughput

    assert run(0.9) < 0.7 * run(0.0)


def test_image_cache_hit_rate_changes_cost():
    def run(hit_rate):
        deployment = Deployment(small_numa_machine(), seed=7)
        store = build_teastore(
            deployment, small_config(image_cache_hit_rate=hit_rate))
        workload = ClosedLoopWorkload(
            deployment, store.browse_session_factory(),
            n_users=48, think_time=0.0)
        return run_experiment(deployment, workload,
                              warmup=1.0, duration=2.0)

    cold = run(0.0)
    warm = run(1.0)
    assert warm.throughput > cold.throughput


def test_same_process_rerun_is_bit_identical():
    """Regression: global instance-id counters must not leak into random
    stream names — two identical runs in one process must agree exactly
    (this once broke via the image batch sampler)."""
    def once():
        deployment = Deployment(small_numa_machine(), seed=9)
        store = build_teastore(deployment, small_config())
        workload = ClosedLoopWorkload(
            deployment, store.browse_session_factory(),
            n_users=16, think_time=0.02)
        result = run_experiment(deployment, workload,
                                warmup=0.5, duration=1.0)
        return (result.throughput, result.latency_mean, result.latency_p99)

    assert once() == once()


def test_buy_profile_exercises_checkout():
    deployment = Deployment(small_numa_machine(), seed=4)
    store = build_teastore(deployment, small_config())
    workload = ClosedLoopWorkload(
        deployment, store.buy_session_factory(),
        n_users=24, think_time=0.02)
    result = run_experiment(deployment, workload, warmup=0.8, duration=2.0)
    assert result.errors == 0
    assert "checkout" in workload.latency.tags
    assert "cart_view" in workload.latency.tags
    # The write-heavy profile pushes more of the CPU into the DB than the
    # light-read endpoints alone would.
    assert result.service_share["db"] > 0.10


def test_buy_profile_stresses_db_more_than_browse():
    def share(factory_name):
        deployment = Deployment(small_numa_machine(), seed=4)
        store = build_teastore(deployment, small_config())
        factory = getattr(store, factory_name)()
        workload = ClosedLoopWorkload(deployment, factory,
                                      n_users=48, think_time=0.0)
        result = run_experiment(deployment, workload,
                                warmup=0.8, duration=2.0)
        return result.service_share["db"]

    assert share("buy_session_factory") > share("browse_session_factory")


def test_store_repr_lists_counts():
    deployment = Deployment(small_numa_machine(), seed=0)
    store = build_teastore(deployment, small_config())
    assert "webui×2" in repr(store)
