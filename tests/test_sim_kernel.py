"""Kernel-backend tests: selection, equivalence, and tombstone edges.

The event-loop core lives behind :mod:`repro.sim.kernel` with a
pure-Python reference backend and an optional compiled backend.  These
tests pin the selection logic (precedence, hard failure, fallback) and
drive both backends through the heap-tombstone edge cases that the
regular engine suite only exercises incidentally: all-tombstone heaps,
cancel-heavy workloads crossing the compaction threshold, and
pending-count accuracy across compactions.
"""

import pytest

from repro._errors import ConfigurationError, SimulationError
from repro.sim import kernel
from repro.sim.engine import Simulator

from tests._kernels import backend_params

BACKENDS = backend_params()


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

def test_python_backend_always_available():
    assert "python" in kernel.available_backends()


def test_explicit_name_beats_default_and_env(monkeypatch):
    monkeypatch.setenv(kernel.KERNEL_ENV, "python")
    with kernel.use_backend("python"):
        assert kernel.resolve_backend("python") == "python"


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv(kernel.KERNEL_ENV, "python")
    assert kernel.resolve_backend() == "python"


def test_default_backend_beats_env(monkeypatch):
    monkeypatch.setenv(kernel.KERNEL_ENV, "bogus")
    with kernel.use_backend("python"):
        assert kernel.resolve_backend() == "python"


def test_use_backend_restores_previous_default():
    before = kernel._default_backend
    with kernel.use_backend("python"):
        assert kernel._default_backend == "python"
    assert kernel._default_backend == before


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        kernel.resolve_backend("fortran")
    with pytest.raises(ConfigurationError):
        kernel.set_default_backend("fortran")


def test_unknown_env_value_rejected(monkeypatch):
    monkeypatch.setenv(kernel.KERNEL_ENV, "bogus")
    with pytest.raises(ConfigurationError):
        kernel.resolve_backend()


def test_compiled_is_hard_requirement_when_missing(monkeypatch):
    monkeypatch.setattr(kernel, "_compiled_checked", True)
    monkeypatch.setattr(kernel, "_compiled_module", None)
    assert kernel.resolve_backend("auto") == "python"
    assert kernel.available_backends() == ("python",)
    with pytest.raises(ConfigurationError, match="not built"):
        kernel.resolve_backend("compiled")


def test_simulator_honors_explicit_kernel():
    assert Simulator(kernel="python").kernel_backend == "python"


def test_active_backend_matches_new_simulator():
    assert Simulator().kernel_backend == kernel.active_backend()


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_reports_its_name(backend):
    sim = Simulator(kernel=backend)
    assert sim.kernel_backend == backend
    assert sim._kernel.backend == backend


# ----------------------------------------------------------------------
# Cross-backend equivalence on a mixed workload
# ----------------------------------------------------------------------

def _mixed_trace(backend):
    """Callbacks, timeouts, processes, and cancellations interleaved."""
    sim = Simulator(kernel=backend)
    trace = []

    def proc(name, delay):
        yield sim.timeout(delay)
        trace.append((name, sim.now))
        value = yield sim.timeout(delay, value=f"{name}-done")
        trace.append((value, sim.now))
        return name.upper()

    first = sim.process(proc("a", 0.5))
    sim.process(proc("b", 0.25))
    sim.call_in(0.25, lambda: trace.append(("cb", sim.now)))
    doomed = sim.call_in(0.3, lambda: trace.append(("doomed", sim.now)))
    doomed.cancel()
    event = sim.event()
    event.add_callback(lambda ev: trace.append(("ev", ev.value, sim.now)))
    sim.call_in(0.75, lambda: event.succeed("late"))
    sim.run()
    trace.append(("final", first.value, sim.now))
    return trace


def test_backends_produce_identical_traces():
    traces = {backend: _mixed_trace(backend)
              for backend in kernel.available_backends()}
    reference = traces.pop("python")
    for backend, trace in traces.items():
        assert trace == reference, backend


# ----------------------------------------------------------------------
# Heap-tombstone edge cases (both backends)
# ----------------------------------------------------------------------

def _noop():
    return None


@pytest.mark.parametrize("backend", BACKENDS)
def test_peek_on_all_tombstone_heap_is_inf(backend):
    sim = Simulator(kernel=backend)
    handles = [sim.call_in(float(i + 1), _noop) for i in range(10)]
    for handle in handles:
        handle.cancel()
    assert sim.peek() == float("inf")
    assert sim._kernel.pending() == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_on_all_tombstone_heap_leaves_clock(backend):
    sim = Simulator(kernel=backend)
    for handle in [sim.call_in(float(i + 1), _noop) for i in range(10)]:
        handle.cancel()
    sim.run()
    assert sim.now == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_step_on_all_tombstone_heap_raises(backend):
    sim = Simulator(kernel=backend)
    for handle in [sim.call_in(float(i + 1), _noop) for i in range(10)]:
        handle.cancel()
    with pytest.raises(SimulationError, match="nothing scheduled"):
        sim.step()


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancelling_every_entry_past_threshold_compacts(backend):
    sim = Simulator(kernel=backend)
    count = kernel._COMPACT_MIN_TOMBSTONES * 3
    handles = [sim.call_in(float(i + 1), _noop) for i in range(count)]
    for handle in handles:
        handle.cancel()
    # Compaction triggered at least once: tombstones cannot still equal
    # the full cancellation count.
    assert sim._kernel.tombstones < count
    assert sim._kernel.pending() == 0
    assert sim.peek() == float("inf")
    sim.run()
    assert sim.now == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_heavy_workload_preserves_survivor_order(backend):
    sim = Simulator(kernel=backend)
    count = kernel._COMPACT_MIN_TOMBSTONES * 3
    fired = []
    handles = []
    for i in range(count):
        time = float(i + 1)
        handles.append(sim.call_at(
            time, lambda time=time: fired.append(time)))
    survivors = [h for i, h in enumerate(handles) if i % 10 == 0]
    for i, handle in enumerate(handles):
        if i % 10 != 0:
            handle.cancel()
    assert sim._kernel.pending() == len(survivors)
    sim.run()
    assert fired == sorted(h.time for h in survivors)
    assert sim._kernel.tombstones == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_repr_pending_count_accurate_after_compaction(backend):
    sim = Simulator(kernel=backend)
    count = kernel._COMPACT_MIN_TOMBSTONES * 3
    handles = [sim.call_in(float(i + 1), _noop) for i in range(count)]
    live = count
    for i, handle in enumerate(handles):
        if i % 3 != 0:
            handle.cancel()
            live -= 1
            assert sim._kernel.pending() == live
    assert f"pending={live}>" in repr(sim)
    sim.run()
    assert f"pending=0>" in repr(sim)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancellation_during_run_crossing_threshold(backend):
    """Callbacks cancelling en masse mid-run: the heap compacts under
    the dispatch loop's feet without dropping or reordering work."""
    sim = Simulator(kernel=backend)
    fired = []
    doomed = [sim.call_in(10.0 + i, _noop)
              for i in range(kernel._COMPACT_MIN_TOMBSTONES * 3)]

    def massacre():
        for handle in doomed:
            handle.cancel()
        fired.append(("massacre", sim.now))

    sim.call_in(1.0, massacre)
    sim.call_in(2.0, lambda: fired.append(("after", sim.now)))
    sim.run()
    assert fired == [("massacre", 1.0), ("after", 2.0)]
    assert sim._kernel.pending() == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_after_pop_does_not_corrupt_tombstones(backend):
    """Cancelling a handle whose callback already ran (or is running)
    must not decrement live accounting for an entry no longer queued."""
    sim = Simulator(kernel=backend)
    fired = []
    handle = sim.call_in(1.0, lambda: fired.append(sim.now))
    sim.run()
    handle.cancel()   # idempotent, post-hoc: no tombstone appears
    assert fired == [1.0]
    assert sim._kernel.tombstones == 0
    assert sim._kernel.pending() == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_handle_surface_parity(backend):
    sim = Simulator(kernel=backend)
    handle = sim.call_in(0.25, _noop)
    assert handle.time == 0.25
    assert handle.cancelled is False
    assert "t=0.250000" in repr(handle)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled is True
    assert repr(handle) == "<Handle cancelled>"


@pytest.mark.parametrize("backend", BACKENDS)
def test_ready_queue_counts_in_pending(backend):
    sim = Simulator(kernel=backend)
    event = sim.event()
    event.succeed("v")
    assert sim._kernel.pending() == 1
    assert sim.peek() == sim.now
    sim.run()
    assert sim._kernel.pending() == 0


# ----------------------------------------------------------------------
# exponential_sampler: draw-sequence equivalence
# ----------------------------------------------------------------------

def test_exponential_sampler_matches_direct_calls():
    from repro.sim.rand import RandomStreams

    direct = RandomStreams(seed=7)
    sampled = RandomStreams(seed=7)
    sampler = sampled.exponential_sampler("think", 0.5)
    for __ in range(2000):   # spans several prefetch-batch refills
        assert sampler() == direct.exponential("think", 0.5)


def test_exponential_sampler_interleaves_with_direct_calls():
    from repro.sim.rand import RandomStreams

    plain = RandomStreams(seed=11)
    mixed = RandomStreams(seed=11)
    sampler = mixed.exponential_sampler("s", 2.0)
    expected = [plain.exponential("s", 2.0) for __ in range(40)]
    got = []
    for i in range(40):
        got.append(sampler() if i % 2 else mixed.exponential("s", 2.0))
    assert got == expected
