"""Record the golden digests (see cases.py for the discipline).

Usage::

    PYTHONPATH=src python tests/golden/record.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import cases  # noqa: E402


def main() -> int:
    digests = {}
    for experiment in cases.CASES:
        for seed in cases.seeds_for(experiment):
            key = f"{experiment}:{seed}"
            digests[key] = cases.run_case(experiment, seed)
            print(f"{key}: {digests[key]}")
    payload = {
        "artifact": "repro-golden-digests",
        "note": ("Behavior-equivalence oracle for simulator "
                 "optimizations; never re-record to make a perf "
                 "change pass."),
        "digests": digests,
    }
    cases.DIGEST_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                                 encoding="utf-8")
    print(f"wrote {cases.DIGEST_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
