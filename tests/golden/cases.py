"""Golden-digest case table shared by the recorder and the test suite.

The digests freeze the *simulated results* of three representative
experiments at small scale.  They are the behavior-equivalence oracle
for simulator hot-path optimizations: any change to event ordering,
random-stream consumption, or floating-point arithmetic shows up as a
digest mismatch, byte for byte.

Recording discipline: digests are recorded on the pre-optimization
engine (after intentional bugfixes land) via::

    PYTHONPATH=src python tests/golden/record.py

and must never be re-recorded to make an optimization pass — a mismatch
means the optimization changed behavior and must be fixed.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing as t

from repro.chaos import campaign as chaos_campaign
from repro.experiments import (
    ExperimentSettings,
    e2_load_scaling,
    e6_service_scaling,
    e7_placement,
    e8_headline,
    e13_fault_tolerance,
    e14_cross_app,
)
from repro.experiments.common import ExperimentResult
from repro.orchestrator.cache import canonical_json

#: Where the recorded digests live (committed to the repo).
DIGEST_PATH = pathlib.Path(__file__).with_name("digests.json")

#: Seeds frozen per experiment.
SEEDS = (1, 2, 3)

#: Experiment id → (module, golden settings factory).  E8 needs a
#: machine with >= 6 CCXs (one per service), hence the medium preset;
#: E6's default CCX ladders only fit next to the fixed others-budget on
#: the 16-CCX rome machine.
CASES: dict[str, t.Any] = {
    "e2": (e2_load_scaling,
           lambda seed: ExperimentSettings.fast(
               preset="tiny", users=48, warmup=0.1, duration=0.3,
               seed=seed)),
    "e6": (e6_service_scaling,
           lambda seed: ExperimentSettings.fast(
               preset="rome-1s", users=48, warmup=0.1, duration=0.3,
               seed=seed)),
    "e7": (e7_placement,
           lambda seed: ExperimentSettings.fast(
               preset="medium", users=48, warmup=0.1, duration=0.3,
               seed=seed)),
    "e8": (e8_headline,
           lambda seed: ExperimentSettings.fast(
               preset="medium", users=64, warmup=0.1, duration=0.3,
               seed=seed)),
    "e13": (e13_fault_tolerance,
            lambda seed: ExperimentSettings.fast(
                preset="tiny", users=32, warmup=0.1, duration=0.25,
                seed=seed)),
    "e14": (e14_cross_app,
            lambda seed: ExperimentSettings.fast(
                preset="tiny", users=48, warmup=0.1, duration=0.3,
                seed=seed)),
    "chaos": (chaos_campaign,
              lambda seed: ExperimentSettings.fast(
                  preset="tiny", users=32, warmup=0.1, duration=0.25,
                  seed=seed)),
}

#: Per-experiment seed overrides.  E6 and E7 are the experiments that
#: lean hardest on replica placement and per-service measurement; one
#: seed each pins the columnar measurement plane without tripling the
#: suite's wall time (E6 alone is ~1.2 s per seed).
SEEDS_FOR: dict[str, tuple[int, ...]] = {
    "e6": (1,),
    "e7": (1,),
    "e14": (1,),
    "chaos": (1,),
}


def seeds_for(experiment: str) -> tuple[int, ...]:
    """The frozen seeds of one experiment's golden cases."""
    return SEEDS_FOR.get(experiment, SEEDS)


def settings_for(experiment: str, seed: int) -> ExperimentSettings:
    """The frozen golden settings of one case."""
    __, factory = CASES[experiment]
    return factory(seed)


def result_digest(result: ExperimentResult) -> str:
    """SHA-256 over the rendered table plus the full-precision rows.

    ``render()`` alone would round floats to three decimals; including
    the canonical JSON of the raw rows makes the digest sensitive to
    the last ulp of every measured number.
    """
    material = canonical_json({
        "experiment": result.experiment,
        "render": result.render(),
        "rows": result.rows,
        "notes": result.notes,
    })
    return hashlib.sha256(material.encode()).hexdigest()


def run_case(experiment: str, seed: int) -> str:
    """Digest of the sequential ``run()`` path for one case."""
    module, __ = CASES[experiment]
    return result_digest(module.run(settings_for(experiment, seed)))


def load_digests() -> dict[str, str]:
    """The committed digests as ``{"e2:1": sha256, ...}``."""
    data = json.loads(DIGEST_PATH.read_text(encoding="utf-8"))
    return dict(data["digests"])
