"""Cache semantics: content addressing, persistence, corruption."""

import dataclasses
import json

import pytest

from repro.experiments import ExperimentSettings
from repro.orchestrator import plan
from repro.orchestrator.cache import (
    ResultCache,
    canonical_json,
    canonical_payload,
    code_version,
)
from repro.orchestrator.executor import run_sweep


def tiny():
    return ExperimentSettings.fast(preset="tiny", users=48,
                                   warmup=0.1, duration=0.3)


def point(settings=None, **overrides):
    values = dict(experiment="tx", index=0, kind="unit", label="p0",
                  settings=settings or tiny(),
                  params=(("users", 32),))
    values.update(overrides)
    return plan.SweepPoint(**values)


def test_settings_to_dict_roundtrip():
    settings = tiny()
    data = settings.to_dict()
    assert isinstance(data["memory_config"], dict)
    assert ExperimentSettings.from_dict(data) == settings
    # The canonical form must be JSON-native end to end.
    assert json.loads(canonical_json(data)) == data


def test_key_stable_across_instances(tmp_path):
    a = ResultCache(tmp_path, fingerprint="f")
    b = ResultCache(tmp_path, fingerprint="f")
    assert a.key_for(point()) == b.key_for(point())


def test_key_changes_with_settings_field_and_seed():
    cache = ResultCache(fingerprint="f")
    base = cache.key_for(point())
    reseeded = dataclasses.replace(tiny(), seed=99)
    assert cache.key_for(point(settings=reseeded)) != base
    longer = dataclasses.replace(tiny(), duration=0.4)
    assert cache.key_for(point(settings=longer)) != base
    assert cache.key_for(point(params=(("users", 33),))) != base


def test_key_changes_with_fingerprint():
    settings = tiny()
    old = ResultCache(fingerprint="before").key_for(point(settings))
    new = ResultCache(fingerprint="after").key_for(point(settings))
    assert old != new


def test_key_ignores_index_and_label():
    cache = ResultCache(fingerprint="f")
    assert (cache.key_for(point(index=0, label="first"))
            == cache.key_for(point(index=7, label="renamed")))


def test_code_version_is_a_digest():
    assert len(code_version()) == 64
    assert code_version() == code_version()


def test_put_then_get_hits_across_instances(tmp_path):
    payload = {"throughput": 1.25, "nested": {"z": 1, "a": 2}}
    writer = ResultCache(tmp_path, fingerprint="f")
    writer.put(point(), payload)
    reader = ResultCache(tmp_path, fingerprint="f")
    assert reader.get(point()) == canonical_payload(payload)
    assert reader.entry_count("tx") == 1
    # A different point misses.
    assert reader.get(point(params=(("users", 64),))) is None


def test_corrupted_lines_are_skipped(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="f")
    cache.put(point(), {"v": 1})
    cache.put(point(params=(("users", 64),)), {"v": 2})
    path = tmp_path / "tx.jsonl"
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    path.write_text("\n".join([
        lines[0],
        lines[1][: len(lines[1]) // 2],  # truncated write
        "not json at all {",
        json.dumps(["wrong", "shape"]),
        json.dumps({"key": 5, "payload": {"v": 9}}),  # non-str key
        "",
    ]) + "\n")
    survivor = ResultCache(tmp_path, fingerprint="f")
    assert survivor.entry_count("tx") == 1
    assert survivor.get(point()) == {"v": 1}
    assert survivor.get(point(params=(("users", 64),))) is None


def test_rerun_bypasses_cache_and_refreshes(tmp_path):
    calls = []

    def points(settings):
        return [plan.SweepPoint("t0", 0, "unit", "only", settings)]

    def run_point(p):
        calls.append(p.label)
        return {"n": len(calls)}

    def assemble(settings, payloads):
        from repro.experiments.common import ExperimentResult
        return ExperimentResult("T0", "toy", [dict(p) for p in payloads])

    plan.register_sweep("t0", "toy", points=points,
                        run_point=run_point, assemble=assemble)
    try:
        cache = ResultCache(tmp_path, fingerprint="f")
        settings = tiny()
        first = run_sweep("t0", settings, cache=cache)
        assert first.stats.executed == 1 and calls == ["only"]
        replay = run_sweep("t0", settings, cache=cache)
        assert replay.stats.cache_hits == 1 and calls == ["only"]
        forced = run_sweep("t0", settings, cache=cache, rerun=True)
        assert forced.stats.executed == 1 and len(calls) == 2
        # --rerun refreshed the entry: the next replay serves n=2.
        assert run_sweep("t0", settings,
                         cache=cache).result.rows == [{"n": 2}]
    finally:
        plan._REGISTRY.pop("t0", None)


def test_no_cache_runs_every_time():
    calls = []

    def points(settings):
        return [plan.SweepPoint("t1", 0, "unit", "only", settings)]

    def run_point(p):
        calls.append(1)
        return {"n": len(calls)}

    def assemble(settings, payloads):
        from repro.experiments.common import ExperimentResult
        return ExperimentResult("T1", "toy", [dict(p) for p in payloads])

    plan.register_sweep("t1", "toy", points=points,
                        run_point=run_point, assemble=assemble)
    try:
        settings = tiny()
        run_sweep("t1", settings, cache=None)
        run_sweep("t1", settings, cache=None)
        assert len(calls) == 2
    finally:
        plan._REGISTRY.pop("t1", None)


def test_unknown_experiment_raises():
    from repro._errors import ConfigurationError
    with pytest.raises(ConfigurationError, match="no sweep provider"):
        plan.provider_for("e99")
