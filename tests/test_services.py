"""Unit + integration tests for the microservice substrate."""

import pytest

from repro._errors import ConfigurationError, ServiceOverloadError
from repro._units import ms, us
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.services import Deployment, LoadBalancer, RpcFabric, ServiceSpec
from repro.topology import tiny_machine


def light_profile(name):
    return WorkloadProfile(name=name, code_bytes=1024, data_bytes=1024,
                           mem_intensity=0.3, frontend_intensity=0.3)


def flat_deployment(machine=None, **kwargs):
    """A deployment with flat clocks and no SMT penalty: hand-checkable."""
    return Deployment(machine or tiny_machine(),
                      smt_model=SmtModel(2.0),
                      frequency_model=FlatFrequencyModel(),
                      **kwargs)


def echo_service(name="echo", workers=2, demand=ms(1.0), **spec_kwargs):
    spec = ServiceSpec(name, light_profile(name), workers=workers,
                       **spec_kwargs)

    @spec.endpoint("run")
    def run(ctx):
        yield ctx.submit_demand(demand)
        return ("echo", ctx.payload)

    return spec


def test_single_request_roundtrip():
    deployment = flat_deployment(rpc=None)
    deployment.rpc.hop_latency = us(25.0)
    deployment.add_instance(echo_service())
    done = deployment.dispatch("echo", "run", payload=42)
    deployment.run()
    assert done.triggered and done.ok
    assert done.value == ("echo", 42)
    # Latency = 2 network hops + 1ms CPU.
    assert deployment.sim.now == pytest.approx(ms(1.0) + 2 * us(25.0))


def test_zero_hop_latency_roundtrip():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    deployment.add_instance(echo_service())
    done = deployment.dispatch("echo", "run")
    deployment.run()
    assert done.ok
    assert deployment.sim.now == pytest.approx(ms(1.0))


def test_worker_pool_limits_concurrency():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    # One worker → strictly serial service even with many CPUs.
    deployment.add_instance(echo_service(workers=1))
    events = [deployment.dispatch("echo", "run") for __ in range(3)]
    deployment.run()
    assert all(e.ok for e in events)
    assert deployment.sim.now == pytest.approx(ms(3.0))


def test_multiple_workers_run_concurrently():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    deployment.add_instance(echo_service(workers=4))
    events = [deployment.dispatch("echo", "run") for __ in range(4)]
    deployment.run()
    assert all(e.ok for e in events)
    # tiny machine has 4 physical cores → all four run in parallel.
    assert deployment.sim.now == pytest.approx(ms(1.0))


def test_downstream_call_chain():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    backend = ServiceSpec("backend", light_profile("backend"), workers=2)

    @backend.endpoint("query")
    def query(ctx):
        yield ctx.submit_demand(ms(2.0))
        return "rows"

    frontend = ServiceSpec("frontend", light_profile("frontend"), workers=2)

    @frontend.endpoint("page")
    def page(ctx):
        yield ctx.submit_demand(ms(1.0))
        rows = yield ctx.call("backend", "query")
        yield ctx.submit_demand(ms(0.5))
        return ("page", rows)

    deployment.add_instance(backend)
    deployment.add_instance(frontend)
    done = deployment.dispatch("frontend", "page")
    deployment.run()
    assert done.value == ("page", "rows")
    assert deployment.sim.now == pytest.approx(ms(3.5))


def test_parallel_downstream_calls_overlap():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    backend = ServiceSpec("backend", light_profile("backend"), workers=4)

    @backend.endpoint("query")
    def query(ctx):
        yield ctx.submit_demand(ms(2.0))
        return "x"

    frontend = ServiceSpec("frontend", light_profile("frontend"), workers=2)

    @frontend.endpoint("page")
    def page(ctx):
        first = ctx.call("backend", "query")
        second = ctx.call("backend", "query")
        yield ctx.gather(first, second)
        return "done"

    deployment.add_instance(backend)
    deployment.add_instance(frontend)
    done = deployment.dispatch("frontend", "page")
    deployment.run()
    assert done.ok
    # Both 2ms backend calls overlap on different cores.
    assert deployment.sim.now == pytest.approx(ms(2.0))


def test_bounded_queue_sheds_load():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    deployment.add_instance(
        echo_service(workers=1, queue_capacity=1, demand=ms(5.0)))
    deployment.run(until=0.0)  # let worker processes boot
    # Worker takes the 1st directly, the 2nd fills the queue, 3rd is shed.
    accepted = [deployment.dispatch("echo", "run") for __ in range(2)]
    shed = deployment.dispatch("echo", "run")
    for event in accepted + [shed]:
        event.defuse()
    deployment.run()
    assert accepted[0].ok and accepted[1].ok
    assert shed.triggered and not shed.ok
    assert isinstance(shed.value, ServiceOverloadError)
    instance = deployment.registry.instances_of("echo")[0]
    assert instance.rejected == 1
    assert instance.completed == 2


def test_handler_exception_propagates_to_caller():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    spec = ServiceSpec("flaky", light_profile("flaky"), workers=1)

    @spec.endpoint("boom")
    def boom(ctx):
        yield ctx.submit_demand(ms(0.1))
        raise RuntimeError("handler crashed")

    deployment.add_instance(spec)
    done = deployment.dispatch("flaky", "boom")
    done.defuse()
    deployment.run()
    assert done.triggered and not done.ok
    assert isinstance(done.value, RuntimeError)
    instance = deployment.registry.instances_of("flaky")[0]
    assert instance.failed == 1
    # The worker survives and serves the next request.
    spec2_done = deployment.dispatch("flaky", "boom")
    spec2_done.defuse()
    deployment.run()
    assert instance.failed == 2


def test_round_robin_spreads_across_replicas():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    spec = echo_service(workers=1)
    a = deployment.add_instance(spec)
    b = deployment.add_instance(spec)
    for __ in range(4):
        deployment.dispatch("echo", "run")
    deployment.run()
    assert a.completed == 2
    assert b.completed == 2


def test_least_outstanding_prefers_idle_replica():
    deployment = flat_deployment(lb_policy="least_outstanding")
    deployment.rpc.hop_latency = 0.0
    spec = echo_service(workers=1, demand=ms(4.0))
    a = deployment.add_instance(spec)
    b = deployment.add_instance(spec)
    deployment.dispatch("echo", "run")  # lands on a
    deployment.run(until=ms(1.0))
    deployment.dispatch("echo", "run")  # a is busy → b
    deployment.run()
    assert a.completed == 1
    assert b.completed == 1


def test_dispatch_unknown_service_raises():
    deployment = flat_deployment()
    with pytest.raises(ConfigurationError, match="no such service"):
        deployment.dispatch("ghost", "run")


def test_unknown_endpoint_reported_with_choices():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    deployment.add_instance(echo_service())
    done = deployment.dispatch("echo", "missing")
    done.defuse()
    deployment.run()
    assert not done.ok
    assert "known" in str(done.value)


def test_affinity_restricts_where_service_runs():
    machine = tiny_machine()
    deployment = flat_deployment(machine)
    deployment.rpc.hop_latency = 0.0
    pinned = deployment.add_instance(echo_service(),
                                     affinity=machine.cpus_in_ccx(0))
    assert pinned.affinity == machine.cpus_in_ccx(0)
    assert pinned.home_node == 0
    done = deployment.dispatch("echo", "run")
    deployment.run()
    assert done.ok
    # All CPU time must land inside CCX 0's cpus.
    busy_outside = sum(deployment.scheduler.busy_time(i)
                      for i in machine.all_cpus() - machine.cpus_in_ccx(0))
    assert busy_outside == 0.0


def test_affinity_outside_online_raises():
    machine = tiny_machine()
    deployment = Deployment(machine, online=machine.cpus_in_ccx(0))
    from repro.topology import CpuSet
    with pytest.raises(ConfigurationError):
        deployment.add_instance(echo_service(),
                                affinity=machine.cpus_in_ccx(1))


def test_remove_instance_cleans_up():
    deployment = flat_deployment()
    instance = deployment.add_instance(echo_service())
    deployment.remove_instance(instance)
    assert deployment.instances == []
    assert deployment.registry.instances_of("echo") == []
    with pytest.raises(ConfigurationError):
        deployment.dispatch("echo", "run")


def test_shared_state_factory():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    spec = ServiceSpec("counting", light_profile("counting"), workers=1,
                       shared_factory=lambda instance: {"hits": 0})

    @spec.endpoint("hit")
    def hit(ctx):
        yield ctx.submit_demand(ms(0.1))
        ctx.shared["hits"] += 1
        return ctx.shared["hits"]

    deployment.add_instance(spec)
    first = deployment.dispatch("counting", "hit")
    deployment.run()
    second = deployment.dispatch("counting", "hit")
    deployment.run()
    assert first.value == 1
    assert second.value == 2


def test_spec_validation():
    profile = light_profile("x")
    with pytest.raises(ConfigurationError):
        ServiceSpec("x", profile, workers=0)
    with pytest.raises(ConfigurationError):
        ServiceSpec("x", profile, queue_capacity=0)
    spec = ServiceSpec("x", profile)
    spec.add_endpoint("a", lambda ctx: iter(()))
    with pytest.raises(ConfigurationError):
        spec.add_endpoint("a", lambda ctx: iter(()))
    with pytest.raises(ConfigurationError):
        spec.resolve("nope")


def test_load_balancer_validation():
    with pytest.raises(ConfigurationError):
        LoadBalancer("svc", policy="random")
    balancer = LoadBalancer("svc")
    with pytest.raises(ConfigurationError):
        balancer.pick()


def test_rpc_validation():
    from repro.sim import Simulator
    with pytest.raises(ConfigurationError):
        RpcFabric(Simulator(), hop_latency=-1.0)


def test_foreign_rpc_fabric_rejected():
    from repro.sim import Simulator
    foreign = RpcFabric(Simulator())
    with pytest.raises(ConfigurationError):
        Deployment(tiny_machine(), rpc=foreign)


def test_request_depth_tracks_call_chain():
    deployment = flat_deployment()
    deployment.rpc.hop_latency = 0.0
    depths = []
    backend = ServiceSpec("backend", light_profile("backend"), workers=1)

    @backend.endpoint("q")
    def q(ctx):
        depths.append(ctx.request.depth)
        yield ctx.submit_demand(ms(0.1))
        return None

    frontend = ServiceSpec("frontend", light_profile("frontend"), workers=1)

    @frontend.endpoint("page")
    def page(ctx):
        depths.append(ctx.request.depth)
        yield ctx.call("backend", "q")
        return None

    deployment.add_instance(backend)
    deployment.add_instance(frontend)
    deployment.dispatch("frontend", "page")
    deployment.run()
    assert depths == [0, 1]


def test_determinism_same_seed_same_trace():
    def run(seed):
        deployment = Deployment(tiny_machine(), seed=seed)
        deployment.rpc.hop_latency = 0.0
        spec = ServiceSpec("svc", light_profile("svc"), workers=2)

        @spec.endpoint("op")
        def op(ctx):
            yield ctx.compute(ms(1.0), cv=0.5)
            return None

        deployment.add_instance(spec)
        finish_times = []
        for __ in range(10):
            done = deployment.dispatch("svc", "op")
            done.add_callback(
                lambda __, d=deployment: finish_times.append(d.sim.now))
        deployment.run()
        return finish_times

    assert run(7) == run(7)
    assert run(7) != run(8)
