"""Unit + property tests for the CPU scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import SchedulingError
from repro.cpu import (
    CpuBurst,
    CpuScheduler,
    FlatFrequencyModel,
    SmtModel,
    TaskGroup,
)
from repro._units import ms
from repro.sim import Simulator
from repro.topology import CpuSet, Machine, MachineSpec, tiny_machine


def make_scheduler(machine=None, smt_yield=1.3, online=None):
    """A scheduler with flat frequency so wall times are hand-checkable."""
    sim = Simulator()
    machine = machine or tiny_machine()
    scheduler = CpuScheduler(
        sim, machine, online=online,
        smt_model=SmtModel(smt_yield),
        frequency_model=FlatFrequencyModel())
    return sim, machine, scheduler


def run_burst(sim, scheduler, group, demand):
    burst = CpuBurst(demand, group, sim.event())
    scheduler.submit(burst)
    return burst


def test_single_burst_runs_at_nominal_speed():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", machine.all_cpus())
    burst = run_burst(sim, scheduler, group, ms(2.0))
    sim.run()
    assert burst.finished_at == pytest.approx(ms(2.0))
    assert burst.wall_time == pytest.approx(ms(2.0))
    assert burst.queueing_delay == 0.0


def test_done_event_carries_burst():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", machine.all_cpus())
    burst = run_burst(sim, scheduler, group, ms(1.0))
    sim.run()
    assert burst.done.triggered
    assert burst.done.value is burst


def test_zero_demand_completes_immediately():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", machine.all_cpus())
    burst = run_burst(sim, scheduler, group, 0.0)
    sim.run()
    assert burst.finished_at == 0.0


def test_two_bursts_prefer_distinct_physical_cores():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", machine.all_cpus())
    a = run_burst(sim, scheduler, group, ms(1.0))
    b = run_burst(sim, scheduler, group, ms(1.0))
    sim.run()
    core_a = machine.cpu(a.cpu_index).core.index
    core_b = machine.cpu(b.cpu_index).core.index
    assert core_a != core_b
    # No SMT sharing → both finish at nominal time.
    assert a.wall_time == pytest.approx(ms(1.0))
    assert b.wall_time == pytest.approx(ms(1.0))


def test_smt_pair_slows_both_threads():
    sim, machine, scheduler = make_scheduler(smt_yield=1.3)
    # Restrict to both threads of physical core 0 (tiny machine: cpus 0, 4).
    pair = machine.cpus_in_core(0)
    group = TaskGroup("g", pair)
    a = run_burst(sim, scheduler, group, ms(1.0))
    b = run_burst(sim, scheduler, group, ms(1.0))
    sim.run()
    # Both co-run the whole time at rate 0.65.
    expected = ms(1.0) / 0.65
    assert a.wall_time == pytest.approx(expected)
    assert b.wall_time == pytest.approx(expected)


def test_smt_re_rating_mid_burst():
    sim, machine, scheduler = make_scheduler(smt_yield=1.3)
    pair = machine.cpus_in_core(0)
    group = TaskGroup("g", pair)
    a = run_burst(sim, scheduler, group, ms(2.0))

    # b arrives 1ms in; a has 1ms of demand left, now at rate 0.65.
    def late_submit():
        run_burst(sim, scheduler, group, ms(10.0))

    sim.call_in(ms(1.0), late_submit)
    sim.run()
    expected_a = ms(1.0) + ms(1.0) / 0.65
    assert a.finished_at == pytest.approx(expected_a)


def test_sibling_speeds_up_when_partner_finishes():
    sim, machine, scheduler = make_scheduler(smt_yield=1.3)
    pair = machine.cpus_in_core(0)
    group = TaskGroup("g", pair)
    short = run_burst(sim, scheduler, group, ms(0.65))  # 1ms at rate 0.65
    long = run_burst(sim, scheduler, group, ms(2.0))
    sim.run()
    # Both co-run until short finishes at t=1ms (0.65ms demand / 0.65).
    assert short.finished_at == pytest.approx(ms(1.0))
    # long executed 0.65ms of demand in that window, then runs alone.
    expected_long = ms(1.0) + (ms(2.0) - ms(0.65)) / 1.0
    assert long.finished_at == pytest.approx(expected_long)


def test_queueing_fifo_on_single_cpu():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", CpuSet.single(0))
    bursts = [run_burst(sim, scheduler, group, ms(1.0)) for __ in range(3)]
    sim.run()
    finishes = [b.finished_at for b in bursts]
    assert finishes == sorted(finishes)
    assert finishes[-1] == pytest.approx(ms(3.0))
    assert bursts[2].queueing_delay == pytest.approx(ms(2.0))


def test_work_stealing_respects_affinity():
    sim, machine, scheduler = make_scheduler()
    # Pin a long burst to cpu 0, queue two more behind it; cpu 1 may only
    # run group_b work, so it must steal only the group_b burst.
    group_a = TaskGroup("a", CpuSet.single(0))
    group_b = TaskGroup("b", CpuSet([0, 1]))
    blocker = run_burst(sim, scheduler, group_a, ms(5.0))
    queued_a = run_burst(sim, scheduler, group_a, ms(1.0))
    stealable_b = run_burst(sim, scheduler, group_b, ms(1.0))
    sim.run()
    assert blocker.cpu_index == 0
    assert stealable_b.cpu_index == 1  # placed or stolen onto cpu 1
    assert queued_a.cpu_index == 0
    assert queued_a.started_at >= blocker.finished_at


def test_steal_happens_when_cpu_goes_idle():
    sim, machine, scheduler = make_scheduler()
    # Saturate both threads of core 0 with pinned work, then queue extra
    # bursts allowed anywhere; they should be executed by other cpus only
    # if affinity permits. Here affinity is pinned to cpu 0 only, then a
    # wide burst is queued; when cpu 1 finishes its own work it steals it.
    pinned = TaskGroup("pinned", CpuSet.single(0))
    wide = TaskGroup("wide", CpuSet([0, 1]))
    run_burst(sim, scheduler, pinned, ms(4.0))
    run_burst(sim, scheduler, wide, ms(1.0))  # goes to idle cpu 1 directly
    first = run_burst(sim, scheduler, wide, ms(1.0))  # queues (0 and 1 busy)
    sim.run()
    assert scheduler.bursts_stolen >= 0  # stealing path exercised or direct
    assert first.finished_at is not None
    assert first.cpu_index == 1  # cpu 1 frees up first (1ms vs 4ms)


def test_submit_offline_affinity_raises():
    sim, machine, scheduler = make_scheduler(online=CpuSet([0, 1]))
    group = TaskGroup("g", CpuSet.single(5))
    with pytest.raises(SchedulingError):
        run_burst(sim, scheduler, group, ms(1.0))


def test_online_subset_is_respected():
    machine = tiny_machine()
    sim, machine, scheduler = make_scheduler(
        machine=machine, online=CpuSet([0, 1]))
    group = TaskGroup("g", machine.all_cpus())
    bursts = [run_burst(sim, scheduler, group, ms(1.0)) for __ in range(4)]
    sim.run()
    assert all(b.cpu_index in (0, 1) for b in bursts)


def test_online_validation():
    sim = Simulator()
    machine = tiny_machine()
    with pytest.raises(SchedulingError):
        CpuScheduler(sim, machine, online=CpuSet())
    with pytest.raises(SchedulingError):
        CpuScheduler(sim, machine, online=CpuSet([99]))


def test_busy_time_accounting_matches_wall_time():
    sim, machine, scheduler = make_scheduler(smt_yield=2.0)
    group = TaskGroup("g", machine.all_cpus())
    bursts = [run_burst(sim, scheduler, group, ms(1.5)) for __ in range(10)]
    sim.run()
    total_wall = sum(b.wall_time for b in bursts)
    assert scheduler.total_busy_time() == pytest.approx(total_wall)


def test_group_accounting():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", machine.all_cpus())
    run_burst(sim, scheduler, group, ms(1.0))
    run_burst(sim, scheduler, group, ms(2.0))
    sim.run()
    assert group.bursts_completed == 2
    assert group.cpu_time == pytest.approx(ms(3.0))
    assert group.last_ccx is not None


def test_cache_affine_placement_prefers_last_ccx():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", machine.all_cpus())
    first = run_burst(sim, scheduler, group, ms(1.0))
    sim.run()
    first_ccx = machine.cpu(first.cpu_index).ccx.index
    assert group.last_ccx == first_ccx
    # An idle machine: next burst should return to the same CCX even
    # though all cpus are idle.
    second = run_burst(sim, scheduler, group, ms(1.0))
    sim.run()
    assert machine.cpu(second.cpu_index).ccx.index == first_ccx


def test_boost_speeds_up_lone_burst():
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine, smt_model=SmtModel(1.3))
    group = TaskGroup("g", machine.all_cpus())
    burst = CpuBurst(ms(1.0), group, sim.event())
    scheduler.submit(burst)
    sim.run()
    boost = machine.spec.max_boost_ghz / machine.spec.base_freq_ghz
    assert burst.wall_time == pytest.approx(ms(1.0) / boost)


def test_queue_depth_and_repr():
    sim, machine, scheduler = make_scheduler()
    group = TaskGroup("g", CpuSet.single(0))
    for __ in range(3):
        run_burst(sim, scheduler, group, ms(1.0))
    assert scheduler.queue_depth() == 2
    assert "running" in repr(scheduler)
    sim.run()
    assert scheduler.queue_depth() == 0


@settings(max_examples=30, deadline=None)
@given(demands=st.lists(st.floats(min_value=0.0001, max_value=0.01),
                        min_size=1, max_size=30),
       seed_cpu_count=st.sampled_from([1, 2, 4]))
def test_property_all_bursts_complete_and_work_is_conserved(
        demands, seed_cpu_count):
    sim = Simulator()
    machine = Machine(MachineSpec(
        name="prop", ccds_per_socket=1, ccxs_per_ccd=1,
        cores_per_ccx=seed_cpu_count, threads_per_core=1))
    scheduler = CpuScheduler(sim, machine,
                             smt_model=SmtModel(2.0),
                             frequency_model=FlatFrequencyModel())
    group = TaskGroup("g", machine.all_cpus())
    bursts = []
    for demand in demands:
        burst = CpuBurst(demand, group, sim.event())
        scheduler.submit(burst)
        bursts.append(burst)
    sim.run()
    assert all(b.finished_at is not None for b in bursts)
    # With rate exactly 1.0 everywhere, busy time equals total demand.
    assert scheduler.total_busy_time() == pytest.approx(sum(demands))
    assert scheduler.queue_depth() == 0


@settings(max_examples=20, deadline=None)
@given(demands=st.lists(st.floats(min_value=0.0001, max_value=0.005),
                        min_size=2, max_size=20))
def test_property_smt_never_loses_work(demands):
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine,
                             smt_model=SmtModel(1.3),
                             frequency_model=FlatFrequencyModel())
    group = TaskGroup("g", machine.all_cpus())
    bursts = []
    for demand in demands:
        burst = CpuBurst(demand, group, sim.event())
        scheduler.submit(burst)
        bursts.append(burst)
    sim.run()
    assert all(b.finished_at is not None for b in bursts)
    for burst in bursts:
        # Slowdowns can only stretch wall time, never shrink below demand.
        assert burst.wall_time >= burst.demand * 0.999
