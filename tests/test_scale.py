"""The sharded execution tier: partitioning, the sync grid, the
coupling model, payload merge hooks, and end-to-end determinism of
:func:`repro.scale.run_sharded`."""

import pytest

from repro._errors import ConfigurationError
from repro.experiments import ExperimentSettings
from repro.experiments.common import run_store
from repro.metrics.latency import LatencyRecorder
from repro.orchestrator import ResultCache
from repro.scale import (
    ScaleConfig,
    inflation_profiles,
    merge_demand,
    plan_shards,
    run_sharded,
    window_boundaries,
)
from repro.services.deployment import Deployment
from repro.sim import kernel
from repro.tracing.collector import SpanTable, TraceCollector

from ._kernels import backend_params


def tiny(**overrides):
    overrides.setdefault("preset", "tiny")
    overrides.setdefault("users", 48)
    overrides.setdefault("warmup", 0.1)
    overrides.setdefault("duration", 0.3)
    return ExperimentSettings.fast(**overrides)


class TestPlan:
    def test_partition_is_contiguous_and_balanced(self):
        plan = plan_shards(10, ScaleConfig(shards=3), warmup=0.1,
                           duration=0.3)
        sizes = [spec.n_users for spec in plan.shards]
        assert sizes == [4, 3, 3]  # remainder on the leading shards
        covered = [uid for spec in plan.shards for uid in spec.users]
        assert covered == list(range(10))

    def test_cohorts_keep_global_ids(self):
        plan = plan_shards(10, ScaleConfig(shards=2, cohort_factor=3),
                           warmup=0.1, duration=0.3)
        second = plan.shards[1]
        assert second.user_base == 5
        assert [c.rep for c in second.cohorts] == [5, 8]
        members = [uid for c in second.cohorts for uid in c.members]
        assert members == list(range(5, 10))
        assert plan.n_cohorts == 4

    def test_more_shards_than_users_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(2, ScaleConfig(shards=3), warmup=0.1, duration=0.3)

    def test_window_grid_hits_phase_edges_exactly(self):
        boundaries, warmup_windows = window_boundaries(
            warmup=0.8, duration=1.5, window=0.25)
        assert boundaries[warmup_windows - 1] == 0.8
        assert boundaries[-1] == 0.8 + 1.5
        assert warmup_windows == 4
        assert all(b2 > b1 for b1, b2 in zip(boundaries, boundaries[1:]))

    def test_zero_warmup_has_no_warmup_windows(self):
        boundaries, warmup_windows = window_boundaries(
            warmup=0.0, duration=1.0, window=None)
        assert warmup_windows == 0
        assert len(boundaries) == 8  # default measure split
        assert boundaries[-1] == 1.0

    def test_config_validation(self):
        for bad in (dict(shards=0), dict(cohort_factor=0),
                    dict(window=0.0), dict(sync_rounds=0),
                    dict(alpha=-0.1), dict(f_max=0.5)):
            with pytest.raises(ConfigurationError):
                ScaleConfig(**bad)
        with pytest.raises(ConfigurationError):
            window_boundaries(warmup=-0.1, duration=1.0, window=None)
        with pytest.raises(ConfigurationError):
            window_boundaries(warmup=0.0, duration=0.0, window=None)


class TestSync:
    def test_merge_demand_totals(self):
        profiles = [{"db": [1, 2, 3]}, {"db": [10, 20, 30],
                                        "persistence": [5, 5, 5]}]
        totals = merge_demand(profiles, 3)
        assert totals == {"db": [11, 22, 33], "persistence": [5, 5, 5]}

    def test_inflation_formula_and_lag(self):
        config = ScaleConfig(shards=2, alpha=0.25, f_max=4.0)
        profiles = [{"db": [100, 100, 100]}, {"db": [300, 100, 100]}]
        first, second = inflation_profiles(profiles, config, 3)
        # Window 0 is the conservative cold start; window k sees the
        # merged demand of window k-1.
        assert first["db"][0] == 1.0
        assert first["db"][1] == 1.0 + 0.25 * 300 / 100
        assert second["db"][1] == 1.0 + 0.25 * 100 / 300
        assert first["db"][2] == second["db"][2] == 1.25

    def test_inflation_clamps_at_f_max(self):
        config = ScaleConfig(shards=2, alpha=1.0, f_max=2.0)
        profiles = [{"db": [1, 1]}, {"db": [1000, 1000]}]
        factors = inflation_profiles(profiles, config, 2)
        assert factors[0]["db"][1] == 2.0

    def test_single_shard_degenerates_to_ones(self):
        config = ScaleConfig(shards=1)
        factors = inflation_profiles([{"db": [50, 50, 50]}], config, 3)
        assert factors[0]["db"] == (1.0, 1.0, 1.0)


class TestMergeHooks:
    def test_latency_payload_round_trip(self):
        source = LatencyRecorder()
        source.record(0.1, tag="home")
        source.record(0.2, tag="login")
        source.record(0.3)
        sink = LatencyRecorder()
        sink.record(0.4, tag="login")
        sink.extend_from_payload(source.to_payload())
        assert sink.count == 4
        assert sorted(sink.tags) == ["home", "login"]
        assert sink.percentile(0.0, tag="login") == 0.2  # imported sample
        assert sink.max(tag="login") == 0.4  # local sample survives

    def test_span_merge_relocates_request_ids(self):
        def table_with(ids):
            table = SpanTable()
            for request_id in ids:
                table.append(request_id, None, "web", "home", 0,
                             0.0, 0.0, 0.1, 0.2)
            table.append(ids[-1] + 1, ids[0], "db", "query", 1,
                         0.1, 0.1, 0.15, 0.18)
            return table

        # Two shard processes both start their request counter at 0.
        payloads = [table_with([0, 1]).to_payload(),
                    table_with([0, 1]).to_payload()]
        merged = SpanTable.merged(payloads)
        assert len(merged) == 6
        ids = merged.request_id.as_array().tolist()
        assert len(set(ids)) == len(ids)  # no collisions after merge
        collector = TraceCollector.merged(payloads)
        roots = collector.roots
        assert len(roots) == 4
        child_services = {span.service
                          for root in roots
                          for span in collector.children_of(root)}
        assert child_services <= {"db"}

    def test_registry_counts_lookups(self):
        settings = tiny(users=12)
        __, deployment, __ = run_store(settings)
        assert deployment.registry.lookups > 0


class TestShardedRun:
    @pytest.mark.parametrize("backend", backend_params())
    def test_single_shard_matches_plain_run(self, backend):
        settings = tiny()
        with kernel.use_backend(backend):
            plain, __, __ = run_store(settings)
            outcome = run_sharded(settings)
        # Bit-identity, not approximation: the windowed driver replays
        # run_experiment's phase semantics exactly.
        assert outcome.result == plain
        assert outcome.plan.n_windows >= 1
        assert outcome.sync.max_factor() == 1.0

    def test_worker_count_does_not_change_results(self):
        settings = tiny(shards=3, cohort_factor=4)
        sequential = run_sharded(settings, jobs=1)
        parallel = run_sharded(settings, jobs=2)
        assert sequential.result == parallel.result
        assert sequential.sync.factors == parallel.sync.factors
        assert sequential.sync.total_demand == parallel.sync.total_demand

    def test_cache_replays_identically(self, tmp_path):
        settings = tiny(shards=2, cohort_factor=4)
        first = run_sharded(settings, cache=ResultCache(tmp_path))
        again = run_sharded(settings, cache=ResultCache(tmp_path))
        assert first.result == again.result
        assert any(tmp_path.iterdir())  # shard payloads were persisted

    def test_coupling_inflates_shared_tier(self):
        settings = tiny(shards=3, cohort_factor=4)
        outcome = run_sharded(settings)
        assert outcome.sync.max_factor() > 1.0
        for profile in outcome.sync.factors:
            assert set(profile) == {"persistence", "db"}
            for schedule in profile.values():
                assert schedule[0] == 1.0
                assert all(1.0 <= f <= 4.0 for f in schedule)
        assert len(outcome.sync.registry_lookups) == 3
        assert sum(map(sum, outcome.sync.registry_lookups)) > 0

    def test_traced_run_merges_spans_across_shards(self):
        settings = tiny(shards=2, cohort_factor=4)
        outcome = run_sharded(settings, trace=True)
        assert outcome.spans is not None and len(outcome.spans) > 0
        ids = outcome.spans.request_id.as_array().tolist()
        assert len(set(ids)) == len(ids)
        shard_rows = [len(payload["spans"]["request_id"])
                      for payload in outcome.shard_payloads]
        assert len(outcome.spans) == sum(shard_rows)
        assert all(rows > 0 for rows in shard_rows)

    def test_run_store_routes_sharded_settings(self):
        settings = tiny(shards=2, cohort_factor=4)
        via_store, deployment, store = run_store(settings)
        direct = run_sharded(settings)
        assert via_store == direct.result
        assert deployment is not None and store is not None

    def test_run_store_rejects_overrides_when_sharded(self):
        settings = tiny(shards=2)
        with pytest.raises(ConfigurationError):
            run_store(settings, machine=settings.machine())
