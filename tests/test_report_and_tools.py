"""Tests for the report generator, session helpers, machine
serialization, and the calibration search."""

import math

import pytest

from repro._errors import ConfigurationError, TopologyError, WorkloadError
from repro.calibration import (
    CalibrationResult,
    bisect_to_target,
    calibrate_headline,
    scaled_memory_config,
)
from repro.experiments.common import ExperimentResult
from repro.memory import MemoryConfig
from repro.report import ascii_bars, build_report
from repro.services import Deployment
from repro.topology import tiny_machine
from repro.topology.serialize import (
    dump_machine,
    load_machine,
    machine_from_dict,
    machine_to_dict,
)
from repro.workload.sessions import (
    constant_session,
    scripted_session,
    weighted_mix_session,
)


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def sample_result():
    return ExperimentResult("E0", "Sample", [{"x": 1, "y": 2.0}],
                            notes=["a note"])


def test_build_report_structure():
    report = build_report([sample_result()], machine=tiny_machine())
    assert report.startswith("# TeaStore")
    assert "## Contents" in report
    assert "### E0 — Sample" in report
    assert "tiny-1n-8t" in report
    assert "* a note" in report


def test_build_report_requires_results():
    with pytest.raises(ConfigurationError):
        build_report([])


def test_ascii_bars_renders_scaled():
    chart = ascii_bars([("a", 10.0), ("bb", 5.0), ("c", 0.0)], width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert lines[2].count("#") == 0
    assert lines[0].startswith(" a")  # labels right-aligned


def test_ascii_bars_validation():
    with pytest.raises(ConfigurationError):
        ascii_bars([])
    with pytest.raises(ConfigurationError):
        ascii_bars([("a", -1.0)])


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------

def test_constant_session():
    factory = constant_session("svc", "op", payload=1)
    session = factory(0)
    assert next(session) == ("svc", "op", 1)
    assert next(session) == ("svc", "op", 1)


def test_scripted_session_repeat_and_once():
    steps = [("a", "x", None), ("b", "y", None)]
    looped = scripted_session(steps)(0)
    assert [next(looped) for __ in range(4)] == steps + steps
    once = scripted_session(steps, repeat=False)(0)
    assert list(once) == steps


def test_scripted_session_validation():
    with pytest.raises(WorkloadError):
        scripted_session([])
    with pytest.raises(WorkloadError):
        scripted_session([("a", "x")])  # missing payload


def test_weighted_mix_session_respects_weights():
    deployment = Deployment(tiny_machine(), seed=0)
    mix = {("a", "x", None): 1.0, ("b", "y", None): 0.0}
    session = weighted_mix_session(deployment, mix)(0)
    draws = {next(session) for __ in range(30)}
    assert draws == {("a", "x", None)}


def test_weighted_mix_session_validation():
    deployment = Deployment(tiny_machine(), seed=0)
    with pytest.raises(WorkloadError):
        weighted_mix_session(deployment, {})
    with pytest.raises(WorkloadError):
        weighted_mix_session(deployment, {("a", "x", None): -1.0})


def test_weighted_mix_is_reproducible_per_seed():
    def draw(seed):
        deployment = Deployment(tiny_machine(), seed=seed)
        mix = {("a", "x", None): 0.5, ("b", "y", None): 0.5}
        session = weighted_mix_session(deployment, mix)(3)
        return [next(session)[0] for __ in range(10)]

    assert draw(5) == draw(5)


# ---------------------------------------------------------------------------
# machine serialization
# ---------------------------------------------------------------------------

def test_machine_dict_roundtrip():
    machine = tiny_machine()
    rebuilt = machine_from_dict(machine_to_dict(machine))
    assert rebuilt.spec == machine.spec
    assert rebuilt.n_logical_cpus == machine.n_logical_cpus


def test_machine_json_roundtrip(tmp_path):
    machine = tiny_machine()
    path = tmp_path / "machine.json"
    dump_machine(machine, path)
    assert load_machine(path).spec == machine.spec


def test_machine_from_dict_validation():
    with pytest.raises(TopologyError, match="unknown"):
        machine_from_dict({"name": "x", "bogus": 1})
    with pytest.raises(TopologyError, match="name"):
        machine_from_dict({"sockets": 1})


def test_load_machine_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json")
    with pytest.raises(TopologyError):
        load_machine(path)
    path.write_text("[1, 2]")
    with pytest.raises(TopologyError, match="object"):
        load_machine(path)


def test_custom_milan_like_machine():
    machine = machine_from_dict({
        "name": "milan-like", "sockets": 1, "ccds_per_socket": 8,
        "ccxs_per_ccd": 1, "cores_per_ccx": 8, "threads_per_core": 2,
        "l3_mib_per_ccx": 32.0})
    assert machine.n_logical_cpus == 128
    assert len(machine.ccxs) == 8  # Milan: one 8-core CCX per CCD


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------

def test_scaled_memory_config():
    base = MemoryConfig(l3_miss_weight=0.5, frontend_miss_weight=0.6)
    scaled = scaled_memory_config(2.0, base)
    assert scaled.l3_miss_weight == pytest.approx(1.0)
    assert scaled.frontend_miss_weight == pytest.approx(1.2)
    assert scaled.numa_weight == base.numa_weight  # untouched
    with pytest.raises(ConfigurationError):
        scaled_memory_config(0.0)


def test_bisect_converges_on_monotone_response():
    measure = lambda scale: 0.1 * scale  # target 0.22 → scale 2.2
    scale, achieved, evaluations = bisect_to_target(
        measure, 0.22, lo=0.25, hi=3.0, iterations=12, tolerance=0.001)
    assert achieved == pytest.approx(0.22, abs=0.002)
    assert scale == pytest.approx(2.2, abs=0.02)
    assert evaluations <= 14


def test_bisect_rejects_out_of_bracket_target():
    with pytest.raises(ConfigurationError, match="outside"):
        bisect_to_target(lambda s: 0.01 * s, 5.0)


def test_bisect_validation():
    with pytest.raises(ConfigurationError):
        bisect_to_target(lambda s: s, 1.0, lo=2.0, hi=1.0)
    with pytest.raises(ConfigurationError):
        bisect_to_target(lambda s: s, 1.0, iterations=0)


def test_calibrate_headline_with_synthetic_measure():
    # A saturating synthetic response mimicking the real system.
    measure = lambda scale: 0.4 * (1 - math.exp(-scale))
    result = calibrate_headline(target_uplift=0.22, measure=measure,
                                iterations=12, tolerance=0.001)
    assert isinstance(result, CalibrationResult)
    assert result.error < 0.005
    assert result.config.l3_miss_weight == pytest.approx(
        0.5 * result.scale)
    assert result.evaluations > 2
