"""Unit tests for Resource and Store."""

import pytest

from repro._errors import SimulationError
from repro.sim import Resource, Simulator, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_acquire_within_capacity_is_immediate():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a = res.acquire()
    b = res.acquire()
    assert a.triggered and b.triggered
    assert res.in_use == 2
    assert res.available == 0
    sim.run()


def test_acquire_beyond_capacity_queues():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.acquire()
    second = res.acquire()
    assert first.triggered
    assert not second.triggered
    assert res.queue_length == 1
    sim.run()


def test_release_grants_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    waiters = [res.acquire() for __ in range(3)]
    order = []
    for i, w in enumerate(waiters):
        w.add_callback(lambda __, i=i: order.append(i))
    for __ in range(3):
        res.release()
    sim.run()
    assert order == [0, 1, 2]


def test_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_in_process_models_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    trace = []

    def worker(name, hold):
        yield res.acquire()
        trace.append((name, "in", sim.now))
        yield sim.timeout(hold)
        trace.append((name, "out", sim.now))
        res.release()

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 1.0))
    sim.run()
    assert trace == [
        ("a", "in", 0.0), ("a", "out", 2.0),
        ("b", "in", 2.0), ("b", "out", 3.0),
    ]


def test_release_transfers_slot_keeps_in_use_constant():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    res.acquire()  # queued
    res.release()
    assert res.in_use == 1
    sim.run()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered
    sim.run()
    assert got.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.call_in(2.0, lambda: store.put("late"))
    sim.run()
    assert got == [(2.0, "late")]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(4):
        store.put(i)
    order = []

    def consumer():
        for __ in range(4):
            item = yield store.get()
            order.append(item)

    sim.process(consumer())
    sim.run()
    assert order == [0, 1, 2, 3]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    assert first.triggered
    assert not second.triggered
    assert store.putters_waiting == 1
    got = store.get()
    sim.run()
    assert got.value == "a"
    assert second.triggered
    assert len(store) == 1  # "b" admitted after the get


def test_try_put_respects_capacity():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    sim.run()


def test_try_put_hands_directly_to_waiting_getter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    sim.process(consumer())
    sim.run()  # consumer is now blocked
    assert store.getters_waiting == 1
    assert store.try_put("direct") is True
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.call_in(1.0, lambda: store.put("x"))
    sim.call_in(2.0, lambda: store.put("y"))
    sim.run()
    assert got == [("first", "x"), ("second", "y")]
