"""Property tests: Resource and Store safety under random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store

# A random program: each element is (action, delay).
resource_programs = st.lists(
    st.tuples(st.sampled_from(["acquire", "release"]),
              st.floats(min_value=0.0, max_value=1.0)),
    min_size=1, max_size=40)


@settings(max_examples=100, deadline=None)
@given(program=resource_programs,
       capacity=st.integers(min_value=1, max_value=4))
def test_property_resource_never_exceeds_capacity(program, capacity):
    sim = Simulator()
    resource = Resource(sim, capacity)
    holders = {"count": 0, "max_seen": 0}
    pending_releases = {"owed": 0}

    def on_grant(event):
        holders["count"] += 1
        holders["max_seen"] = max(holders["max_seen"], holders["count"])
        if pending_releases["owed"] > 0:
            pending_releases["owed"] -= 1
            holders["count"] -= 1
            resource.release()

    time = 0.0
    for action, delay in program:
        time += delay
        if action == "acquire":
            sim.call_at(time, lambda: resource.acquire().add_callback(
                on_grant))
        else:
            def release_one():
                if holders["count"] > 0:
                    holders["count"] -= 1
                    resource.release()
                else:
                    # Release arrives before any grant: defer it.
                    pending_releases["owed"] += 1
            sim.call_at(time, release_one)
    sim.run()
    assert holders["max_seen"] <= capacity
    assert resource.in_use <= capacity
    assert resource.in_use >= 0


store_programs = st.lists(
    st.sampled_from(["put", "get"]), min_size=1, max_size=60)


@settings(max_examples=100, deadline=None)
@given(program=store_programs)
def test_property_store_conserves_items(program):
    sim = Simulator()
    store = Store(sim)
    received = []
    puts = 0

    for index, action in enumerate(program):
        if action == "put":
            puts += 1
            sim.call_in(index * 0.01, lambda i=puts: store.put(i))
        else:
            sim.call_in(index * 0.01,
                        lambda: store.get().add_callback(
                            lambda e: received.append(e.value)))
    sim.run()
    # Items received + items still stored == items put; nothing invented,
    # nothing lost (pending getters simply never fired).
    assert len(received) + len(store) == puts
    assert sorted(received + store.drain()) == list(range(1, puts + 1))


@settings(max_examples=60, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=5),
       n_items=st.integers(min_value=1, max_value=20))
def test_property_bounded_store_never_overfills(capacity, n_items):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    accepted = 0
    for i in range(n_items):
        if store.try_put(i):
            accepted += 1
        assert len(store) <= capacity
    assert accepted == min(capacity, n_items)
