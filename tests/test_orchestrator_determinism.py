"""Cross-process determinism: a point computes the same payload and
cache key in-process and inside a worker process.

This is the property the parallel sweep stands on — Python's salted
string hashes mean ``hash()`` would fail it, which is why cache keys go
through canonical serialization instead.
"""

import concurrent.futures

from repro.experiments import ExperimentSettings
from repro.experiments import (
    ablations,
    e1_platform,
    e2_load_scaling,
    e13_fault_tolerance,
)
from repro.orchestrator.cache import ResultCache, canonical_json
from repro.orchestrator.executor import execute_point


def tiny():
    return ExperimentSettings.fast(preset="tiny", users=48,
                                   warmup=0.1, duration=0.3)


def sample_points():
    """One representative point each from four experiments.

    The E13 point runs an *active* fault schedule (slow replica) under
    the full resilience config — retries, jittered backoff, and breaker
    transitions must all replay identically in a worker process.
    """
    settings = tiny()
    e13_points = {(p.param("scenario"), p.param("resilience")): p
                  for p in e13_fault_tolerance.sweep_points(settings)}
    return [
        e1_platform.sweep_points(settings)[0],
        e2_load_scaling.sweep_points(settings, user_counts=[32])[0],
        ablations.a3_sweep_points(settings, smt_yields=(1.3,))[0],
        e13_points[("slow", "full")],
    ]


def _worker_payload_and_key(point):
    """Executed inside the pool: compute payload + key over there."""
    key = ResultCache(fingerprint="fixed").key_for(point)
    return execute_point(point), key


def test_points_match_across_process_boundary():
    points = sample_points()
    local_cache = ResultCache(fingerprint="fixed")
    with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(pool.map(_worker_payload_and_key, points))
    for point, (remote_payload, remote_key) in zip(points, remote):
        local_payload = execute_point(point)
        assert local_payload == remote_payload, point.experiment
        assert canonical_json(local_payload) == canonical_json(
            remote_payload), point.experiment
        assert local_cache.key_for(point) == remote_key, point.experiment


def test_identity_survives_json_round_trip():
    import json
    for point in sample_points():
        identity = point.identity()
        round_tripped = json.loads(canonical_json(identity))
        assert canonical_json(round_tripped) == canonical_json(identity)


def test_same_settings_same_plan():
    a = e2_load_scaling.sweep_points(tiny())
    b = e2_load_scaling.sweep_points(tiny())
    assert [p.identity() for p in a] == [p.identity() for p in b]
    assert [p.label for p in a] == [p.label for p in b]


def test_e13_run_equals_sweep_under_fault_schedules():
    """``repro run e13`` and ``repro sweep e13 --jobs 2`` render the
    same bytes: fault injection and the resilience layer stay inside the
    per-point determinism contract."""
    from repro.orchestrator import run_sweep

    settings = ExperimentSettings.fast(preset="tiny", users=32,
                                       warmup=0.1, duration=0.25)
    sequential = e13_fault_tolerance.run(settings)
    swept = run_sweep("e13", settings, jobs=2, cache=None).result
    assert swept.render() == sequential.render()
    assert swept.rows == sequential.rows
