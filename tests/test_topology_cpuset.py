"""Unit + property tests for CpuSet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import TopologyError
from repro.topology import CpuSet

cpu_id_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)


def test_empty_set():
    cpus = CpuSet()
    assert len(cpus) == 0
    assert not cpus
    assert cpus.to_string() == ""


def test_from_string_singletons_and_ranges():
    cpus = CpuSet.from_string("0-3,8,10-11")
    assert cpus.ids == (0, 1, 2, 3, 8, 10, 11)


def test_from_string_whitespace_tolerant():
    assert CpuSet.from_string(" 1 , 3-4 ").ids == (1, 3, 4)


def test_from_string_empty_is_empty_set():
    assert len(CpuSet.from_string("")) == 0


def test_from_string_rejects_reversed_range():
    with pytest.raises(TopologyError):
        CpuSet.from_string("5-3")


def test_from_string_rejects_garbage():
    with pytest.raises(TopologyError):
        CpuSet.from_string("1,abc")
    with pytest.raises(TopologyError):
        CpuSet.from_string("1,,2")


def test_negative_ids_rejected():
    with pytest.raises(TopologyError):
        CpuSet([-1])


def test_to_string_collapses_ranges():
    assert CpuSet([0, 1, 2, 5, 7, 8]).to_string() == "0-2,5,7-8"


def test_single():
    assert CpuSet.single(5).ids == (5,)


def test_range_constructor_half_open():
    assert CpuSet.range(2, 5).ids == (2, 3, 4)


def test_set_algebra():
    a = CpuSet([0, 1, 2])
    b = CpuSet([2, 3])
    assert (a | b).ids == (0, 1, 2, 3)
    assert (a & b).ids == (2,)
    assert (a - b).ids == (0, 1)


def test_membership_and_iteration_sorted():
    cpus = CpuSet([5, 1, 3])
    assert 3 in cpus
    assert 4 not in cpus
    assert list(cpus) == [1, 3, 5]


def test_subset_and_disjoint():
    assert CpuSet([1, 2]).issubset(CpuSet([1, 2, 3]))
    assert not CpuSet([1, 4]).issubset(CpuSet([1, 2, 3]))
    assert CpuSet([1]).isdisjoint(CpuSet([2]))
    assert not CpuSet([1]).isdisjoint(CpuSet([1]))


def test_first():
    assert CpuSet([9, 4, 7]).first() == 4
    with pytest.raises(TopologyError):
        CpuSet().first()


def test_equality_and_hash():
    assert CpuSet([1, 2]) == CpuSet([2, 1])
    assert hash(CpuSet([1, 2])) == hash(CpuSet([2, 1]))
    assert CpuSet([1]) != CpuSet([2])
    assert CpuSet([1]).__eq__(42) is NotImplemented


@settings(max_examples=200, deadline=None)
@given(ids=cpu_id_sets)
def test_property_string_roundtrip(ids):
    cpus = CpuSet(ids)
    assert CpuSet.from_string(cpus.to_string()) == cpus


@settings(max_examples=100, deadline=None)
@given(a=cpu_id_sets, b=cpu_id_sets)
def test_property_algebra_matches_set_semantics(a, b):
    ca, cb = CpuSet(a), CpuSet(b)
    assert set((ca | cb).ids) == a | b
    assert set((ca & cb).ids) == a & b
    assert set((ca - cb).ids) == a - b


@settings(max_examples=100, deadline=None)
@given(ids=cpu_id_sets)
def test_property_iteration_is_sorted(ids):
    assert list(CpuSet(ids)) == sorted(ids)
