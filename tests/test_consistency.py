"""Consistency invariants across the package: catalogs, exports, wiring."""

import pytest

import repro
from repro.experiments import e3_core_scaling
from repro.experiments.common import ExperimentSettings
from repro.teastore import catalog
from repro.teastore.services import build_specs
from repro.teastore.profiles import BROWSE_TRANSITIONS, BUY_TRANSITIONS


def test_public_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name}"


def test_star_import_is_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "Deployment" in namespace
    assert "build_teastore" in namespace


def test_webui_parse_and_render_cover_same_endpoints():
    assert set(catalog.WEBUI_PARSE) == set(catalog.WEBUI_RENDER)


def test_persistence_ops_have_db_costs():
    assert set(catalog.PERSISTENCE) == set(catalog.DB_COST)


def test_all_demand_constants_positive():
    for mapping in (catalog.WEBUI_PARSE, catalog.WEBUI_RENDER,
                    catalog.PERSISTENCE, catalog.DB_COST):
        assert all(value > 0 for value in mapping.values())
    for constant in (catalog.AUTH_VALIDATE, catalog.AUTH_LOGIN,
                     catalog.AUTH_LOGOUT, catalog.IMAGE_HIT,
                     catalog.IMAGE_MISS, catalog.IMAGE_PREVIEW_HIT,
                     catalog.IMAGE_PREVIEW_MISS, catalog.RECOMMEND):
        assert constant > 0


def test_image_miss_costlier_than_hit():
    assert catalog.IMAGE_MISS > catalog.IMAGE_HIT
    assert catalog.IMAGE_PREVIEW_MISS > catalog.IMAGE_PREVIEW_HIT
    assert catalog.IMAGE_PREVIEW_HIT < catalog.IMAGE_HIT  # thumbnails


def test_webui_endpoints_match_catalog_and_profiles():
    specs = build_specs()
    webui_endpoints = set(specs["webui"].endpoints)
    assert webui_endpoints == set(catalog.WEBUI_PARSE)
    # Every Markov state of both profiles is a real WebUI endpoint.
    assert set(BROWSE_TRANSITIONS) <= webui_endpoints
    assert set(BUY_TRANSITIONS) <= webui_endpoints


def test_cli_covers_every_experiment_module():
    import pkgutil

    import repro.experiments as experiments_package
    from repro.cli import EXPERIMENTS

    modules = {name for __, name, __ in pkgutil.iter_modules(
        experiments_package.__path__)}
    experiment_modules = {name for name in modules
                          if name.startswith("e") and name[1].isdigit()}
    registered = set()
    for experiment_id in EXPERIMENTS:
        if experiment_id.startswith("e"):
            registered.add(experiment_id)
    # e1..e14 all registered.
    assert {f"e{i}" for i in range(1, 15)} <= registered
    assert len(experiment_modules) == 14


def test_e3_default_ladder_on_small_machine():
    settings = ExperimentSettings.fast(users=150, warmup=0.4, duration=0.8)
    result = e3_core_scaling.run(settings)  # default cpu_counts path
    counts = result.column("logical_cpus")
    assert counts == [16, 32, 48, 64]


def test_benchmark_files_exist_for_every_experiment():
    import pathlib
    bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
    names = {p.stem for p in bench_dir.glob("test_*.py")}
    for i in range(1, 15):
        assert any(f"e{i}_" in name for name in names), f"no bench for e{i}"


def test_version_is_exported():
    assert repro.__version__ == "1.0.0"
