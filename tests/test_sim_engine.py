"""Unit tests for the simulation event loop and processes."""

import pytest

from repro._errors import SimulationError
from repro.sim import Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_call_in_runs_callback_at_right_time():
    sim = Simulator()
    seen = []
    sim.call_in(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_call_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0]


def test_call_at_in_the_past_raises():
    sim = Simulator(start_time=3.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_same_time_callbacks_fifo_order():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.call_in(1.0, lambda i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_cancelled_handle_does_not_run():
    sim = Simulator()
    seen = []
    handle = sim.call_in(1.0, lambda: seen.append("x"))
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_in(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    sim.call_in(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    # The event at t=10 is still pending.
    assert sim.peek() == 10.0


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_until_in_past_raises():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_step_without_work_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.call_in(1.0, lambda: seen.append(("second", sim.now)))

    sim.call_in(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 2.0)]


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------

def test_process_timeout_sequencing():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(2.0)
        trace.append(sim.now)
        yield sim.timeout(3.0)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 2.0, 5.0]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.triggered and p.ok
    assert p.value == 42


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_process_waits_on_plain_event():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert got == [(3.0, "open")]


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def ticker(name, period):
        for __ in range(3):
            yield sim.timeout(period)
            trace.append((name, sim.now))

    sim.process(ticker("a", 1.0))
    sim.process(ticker("b", 1.5))
    sim.run()
    # At the t=3.0 tie, b's timeout was scheduled earlier (at t=1.5 vs
    # t=2.0) so FIFO tie-breaking runs it first.
    assert trace == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0),
        ("b", 4.5),
    ]


def test_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_waiter_can_catch_failed_event():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.call_in(1.0, lambda: gate.fail(ValueError("nope")))
    sim.run()
    assert caught == ["nope"]


def test_unhandled_failed_event_escalates():
    sim = Simulator()
    gate = sim.event()
    sim.call_in(1.0, lambda: gate.fail(ValueError("unclaimed")))
    with pytest.raises(ValueError, match="unclaimed"):
        sim.run()


def test_defused_failed_event_does_not_escalate():
    sim = Simulator()
    gate = sim.event()
    gate.defuse()
    sim.call_in(1.0, lambda: gate.fail(ValueError("claimed")))
    sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    causes = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            causes.append((sim.now, interrupt.cause))

    target = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        target.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert causes == [(2.0, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            trace.append(("interrupted", sim.now))
        yield sim.timeout(1.0)
        trace.append(("done", sim.now))

    target = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        target.interrupt()

    sim.process(interrupter())
    sim.run()
    assert trace == [("interrupted", 2.0), ("done", 3.0)]


def test_yielding_non_event_raises_inside_process():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_waiting_on_another_process():
    sim = Simulator()
    trace = []

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        trace.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert trace == [(2.0, "child-result")]


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-0.5)
