"""Unit tests for load generators and the experiment runner."""

import pytest

from repro._errors import ConfigurationError, WorkloadError
from repro._units import ms
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.services import Deployment, ServiceSpec
from repro.topology import tiny_machine
from repro.workload import ClosedLoopWorkload, OpenLoopWorkload, run_experiment


def simple_system(demand=ms(1.0), workers=4, seed=0):
    deployment = Deployment(tiny_machine(), seed=seed,
                            smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel())
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.2, 0.2)
    spec = ServiceSpec("svc", profile, workers=workers)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(demand)
        return "ok"

    deployment.add_instance(spec)
    return deployment


def constant_session(user_id):
    while True:
        yield ("svc", "op", None)


def test_closed_loop_completes_requests():
    deployment = simple_system()
    workload = ClosedLoopWorkload(deployment, constant_session,
                                  n_users=2, think_time=0.01)
    workload.start()
    deployment.run(until=1.0)
    assert workload.meter.lifetime_count > 50
    assert workload.errors == 0


def test_closed_loop_validation():
    deployment = simple_system()
    with pytest.raises(WorkloadError):
        ClosedLoopWorkload(deployment, constant_session, n_users=0)
    with pytest.raises(WorkloadError):
        ClosedLoopWorkload(deployment, constant_session, n_users=1,
                           think_time=-1.0)
    workload = ClosedLoopWorkload(deployment, constant_session, n_users=1)
    workload.start()
    with pytest.raises(WorkloadError):
        workload.start()


def test_closed_loop_interactive_response_time_law():
    # One user, zero-ish think time, 1ms service → ~1000 req/s.
    deployment = simple_system()
    workload = ClosedLoopWorkload(deployment, constant_session,
                                  n_users=1, think_time=0.0)
    result = run_experiment(deployment, workload, warmup=0.5, duration=2.0)
    assert result.throughput == pytest.approx(1000.0, rel=0.05)
    assert result.latency_mean == pytest.approx(ms(1.0), rel=0.05)


def test_closed_loop_throughput_scales_with_users_until_saturation():
    # 4 physical cores, 1ms demand → capacity 4000/s; 2 users ≈ 2000/s.
    results = {}
    for users in (1, 2, 8):
        deployment = simple_system(workers=8)
        workload = ClosedLoopWorkload(deployment, constant_session,
                                      n_users=users, think_time=0.0)
        results[users] = run_experiment(deployment, workload,
                                        warmup=0.5, duration=2.0).throughput
    assert results[2] == pytest.approx(2 * results[1], rel=0.1)
    # tiny machine has 4 cores + SMT-off model (yield 2.0 → no penalty,
    # but 8 lcpus) → 8 users saturate at ~8000/s.
    assert results[8] == pytest.approx(8000.0, rel=0.1)


def test_closed_loop_counts_errors_from_shedding():
    deployment = simple_system(demand=ms(50.0), workers=1)
    # Rebuild service with a tiny queue to force shedding.
    deployment = Deployment(tiny_machine(), smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel())
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.2, 0.2)
    spec = ServiceSpec("svc", profile, workers=1, queue_capacity=1)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(ms(50.0))
        return "ok"

    deployment.add_instance(spec)
    workload = ClosedLoopWorkload(deployment, constant_session,
                                  n_users=10, think_time=0.001)
    workload.start()
    deployment.run(until=1.0)
    assert workload.errors > 0


def test_open_loop_rate_is_respected():
    deployment = simple_system(workers=8)
    workload = OpenLoopWorkload(deployment, constant_session, rate=500.0)
    result = run_experiment(deployment, workload, warmup=1.0, duration=4.0)
    assert result.throughput == pytest.approx(500.0, rel=0.1)


def test_open_loop_validation():
    deployment = simple_system()
    with pytest.raises(WorkloadError):
        OpenLoopWorkload(deployment, constant_session, rate=0.0)
    workload = OpenLoopWorkload(deployment, constant_session, rate=1.0)
    workload.start()
    with pytest.raises(WorkloadError):
        workload.start()


def test_open_loop_latency_grows_with_overload():
    low_deployment = simple_system(workers=8)
    low = OpenLoopWorkload(low_deployment, constant_session, rate=1000.0)
    low_result = run_experiment(low_deployment, low, warmup=0.5, duration=2.0)

    high_deployment = simple_system(workers=8)
    # Offered load just above the ~8000/s capacity → queues build.
    high = OpenLoopWorkload(high_deployment, constant_session, rate=9000.0)
    high_result = run_experiment(high_deployment, high,
                                 warmup=0.5, duration=2.0)
    assert high_result.latency_p99 > 3 * low_result.latency_p99


def test_run_experiment_validation():
    deployment = simple_system()
    workload = ClosedLoopWorkload(deployment, constant_session, n_users=1)
    with pytest.raises(ConfigurationError):
        run_experiment(deployment, workload, warmup=-1.0, duration=1.0)
    with pytest.raises(ConfigurationError):
        run_experiment(deployment, workload, warmup=0.0, duration=0.0)


def test_run_experiment_reports_utilization_and_shares():
    deployment = simple_system(workers=8)
    workload = ClosedLoopWorkload(deployment, constant_session,
                                  n_users=4, think_time=0.0)
    result = run_experiment(deployment, workload, warmup=0.5, duration=2.0)
    assert 0.4 < result.machine_utilization <= 1.0
    assert result.service_share == {"svc": pytest.approx(1.0)}
    assert result.service_utilization["svc"] > 0
    assert "req/s" in str(result)
    assert result.row()["throughput_rps"] == result.throughput


def test_run_experiment_rejects_empty_measurement_window():
    # Users think for minutes; a 0.2s window sees no completions.
    deployment = simple_system()
    workload = ClosedLoopWorkload(deployment, constant_session,
                                  n_users=1, think_time=300.0)
    with pytest.raises(ConfigurationError, match="no requests completed"):
        run_experiment(deployment, workload, warmup=0.1, duration=0.2)


def test_weighted_mix_drives_real_store():
    from repro.teastore import build_teastore
    from repro.teastore.config import TeaStoreConfig
    from repro.topology import small_numa_machine
    from repro.workload import weighted_mix_session

    deployment = Deployment(small_numa_machine(), seed=2)
    config = TeaStoreConfig(
        replicas={"webui": 1, "auth": 1, "persistence": 1, "image": 1,
                  "recommender": 1, "db": 1},
        workers={"webui": 16, "auth": 8, "persistence": 8, "image": 8,
                 "recommender": 8, "db": 8})
    build_teastore(deployment, config)
    mix = {("webui", "home", None): 0.5,
           ("webui", "product", None): 0.5}
    workload = ClosedLoopWorkload(
        deployment, weighted_mix_session(deployment, mix),
        n_users=8, think_time=0.05)
    result = run_experiment(deployment, workload, warmup=0.5, duration=1.5)
    assert result.errors == 0
    assert set(result.latency_by_endpoint) == {"home", "product"}


def test_load_balancer_remove_unknown_raises():
    from repro.services import LoadBalancer
    balancer = LoadBalancer("svc")
    with pytest.raises(ConfigurationError):
        balancer.remove(object())


def test_run_experiment_is_deterministic():
    def once():
        deployment = simple_system(seed=11)
        workload = ClosedLoopWorkload(deployment, constant_session,
                                      n_users=3, think_time=0.01)
        return run_experiment(deployment, workload, warmup=0.5,
                              duration=1.5)

    a, b = once(), once()
    assert a.throughput == b.throughput
    assert a.latency_p99 == b.latency_p99
