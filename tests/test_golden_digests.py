"""Golden-digest equivalence suite.

Asserts that the engine reproduces the committed pre-optimization
result digests byte-identically — under the sequential ``run()`` path
for every (experiment, seed) case, and under ``run_sweep(jobs=4)``
(worker processes) for one seed per experiment.  This is the oracle
that keeps hot-path optimizations behavior-preserving; see
``tests/golden/cases.py``.

Every case runs once per registered kernel backend: the compiled
event-loop kernel must reproduce the same bytes as the pure-Python
reference (the compiled param skips, visibly, when the extension is
not built).  The sweep variant pins the backend through the
environment so worker processes inherit the choice.
"""

import pytest

from repro.orchestrator import run_sweep
from repro.sim import kernel

from tests._kernels import backend_params
from tests.golden import cases

GOLDEN = cases.load_digests()

BACKENDS = backend_params()

RUN_CASES = [(experiment, seed) for experiment in sorted(cases.CASES)
             for seed in cases.seeds_for(experiment)]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("experiment,seed", RUN_CASES)
def test_run_reproduces_golden_digest(experiment, seed, backend):
    with kernel.use_backend(backend):
        digest = cases.run_case(experiment, seed)
    assert digest == GOLDEN[f"{experiment}:{seed}"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("experiment", sorted(cases.CASES))
def test_sweep_jobs4_reproduces_golden_digest(experiment, backend,
                                              monkeypatch):
    monkeypatch.setenv(kernel.KERNEL_ENV, backend)
    seed = cases.seeds_for(experiment)[0]
    settings = cases.settings_for(experiment, seed)
    with kernel.use_backend(backend):
        outcome = run_sweep(experiment, settings, jobs=4, cache=None)
    digest = cases.result_digest(outcome.result)
    assert digest == GOLDEN[f"{experiment}:{seed}"]
