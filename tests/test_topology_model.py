"""Unit + property tests for the Machine topology model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import TopologyError
from repro.topology import (
    CpuSet,
    Machine,
    MachineSpec,
    dual_socket_rome,
    machine_from_preset,
    single_socket_rome,
    small_numa_machine,
    tiny_machine,
)
from repro.topology.model import (
    DISTANCE_CROSS_SOCKET,
    DISTANCE_LOCAL,
    DISTANCE_SAME_SOCKET,
)


def test_paper_platform_has_128_logical_cpus_per_socket():
    machine = single_socket_rome()
    assert machine.spec.logical_cpus_per_socket == 128
    assert machine.n_logical_cpus == 128
    assert len(machine.cores) == 64
    assert len(machine.ccxs) == 16
    assert len(machine.ccds) == 8


def test_dual_socket_counts():
    machine = dual_socket_rome()
    assert machine.n_logical_cpus == 256
    assert len(machine.nodes) == 2
    assert len(machine.sockets) == 2


def test_linux_like_numbering_first_threads_then_siblings():
    machine = tiny_machine()  # 4 cores, 8 lcpus
    for index in range(4):
        assert machine.cpu(index).thread == 0
    for index in range(4, 8):
        assert machine.cpu(index).thread == 1
    assert machine.first_threads() == CpuSet.range(0, 4)


def test_sibling_symmetry():
    machine = tiny_machine()
    for cpu in machine.cpus:
        sibling = machine.sibling(cpu.index)
        assert sibling is not None
        assert sibling.core is cpu.core
        assert machine.sibling(sibling.index).index == cpu.index


def test_sibling_none_without_smt():
    machine = Machine(MachineSpec(name="no-smt", ccds_per_socket=1,
                                  ccxs_per_ccd=1, cores_per_ccx=2,
                                  threads_per_core=1))
    assert machine.sibling(0) is None


def test_cpu_out_of_range_raises():
    machine = tiny_machine()
    with pytest.raises(TopologyError):
        machine.cpu(8)
    with pytest.raises(TopologyError):
        machine.cpu(-1)


def test_ccx_grouping_contains_both_threads():
    machine = tiny_machine()
    ccx0 = machine.cpus_in_ccx(0)
    # CCX 0 has cores 0,1 → lcpus 0,1 and their siblings 4,5.
    assert ccx0 == CpuSet([0, 1, 4, 5])


def test_groupings_partition_the_machine():
    machine = small_numa_machine()
    for groups, count in [
        ([machine.cpus_in_ccx(i) for i in range(len(machine.ccxs))],
         len(machine.ccxs)),
        ([machine.cpus_in_node(i) for i in range(len(machine.nodes))],
         len(machine.nodes)),
        ([machine.cpus_in_socket(i) for i in range(len(machine.sockets))],
         len(machine.sockets)),
    ]:
        assert len(groups) == count
        union = CpuSet()
        total = 0
        for group in groups:
            assert union.isdisjoint(group)
            union = union | group
            total += len(group)
        assert union == machine.all_cpus()
        assert total == machine.n_logical_cpus


def test_cpus_in_core_has_thread_pair():
    machine = tiny_machine()
    assert machine.cpus_in_core(0) == CpuSet([0, 4])


def test_distance_matrix():
    machine = dual_socket_rome()
    assert machine.distance(0, 0) == DISTANCE_LOCAL
    assert machine.distance(0, 1) == DISTANCE_CROSS_SOCKET


def test_distance_same_socket_nps4():
    machine = machine_from_preset("rome-1s-nps4")
    assert len(machine.nodes) == 4
    assert machine.distance(0, 1) == DISTANCE_SAME_SOCKET
    assert machine.distance(2, 2) == DISTANCE_LOCAL


def test_nps4_divides_ccds_evenly():
    machine = machine_from_preset("rome-1s-nps4")
    per_node = [sum(1 for ccd in machine.ccds if ccd.node.index == n)
                for n in range(4)]
    assert per_node == [2, 2, 2, 2]


def test_spec_validation():
    with pytest.raises(TopologyError):
        MachineSpec(name="bad", sockets=0)
    with pytest.raises(TopologyError):
        MachineSpec(name="bad", threads_per_core=3)
    with pytest.raises(TopologyError):
        MachineSpec(name="bad", ccds_per_socket=3, numa_nodes_per_socket=2)
    with pytest.raises(TopologyError):
        MachineSpec(name="bad", base_freq_ghz=3.0, max_boost_ghz=2.0)


def test_unknown_preset_raises_with_choices():
    with pytest.raises(TopologyError, match="rome-1s"):
        machine_from_preset("nope")


def test_describe_mentions_key_facts():
    text = single_socket_rome().describe()
    assert "128" in text
    assert "L3" in text
    assert "CCX" in text


def test_cache_specs_l3_matches_spec():
    machine = single_socket_rome()
    l3 = [c for c in machine.cache_specs() if c.name == "L3"][0]
    assert l3.size_bytes == machine.l3_bytes_per_ccx()
    assert l3.shared_by == "ccx"


def test_cache_spec_str_is_readable():
    specs = {c.name: str(c) for c in tiny_machine().cache_specs()}
    assert "MiB" in specs["L3"]
    assert "KiB" in specs["L1i"]


machine_shapes = st.tuples(
    st.integers(1, 2),   # sockets
    st.integers(1, 4),   # ccds_per_socket
    st.integers(1, 2),   # ccxs_per_ccd
    st.integers(1, 4),   # cores_per_ccx
    st.sampled_from([1, 2]),  # threads_per_core
)


@settings(max_examples=60, deadline=None)
@given(shape=machine_shapes)
def test_property_every_cpu_reachable_and_consistent(shape):
    sockets, ccds, ccxs, cores, threads = shape
    machine = Machine(MachineSpec(
        name="prop", sockets=sockets, ccds_per_socket=ccds,
        ccxs_per_ccd=ccxs, cores_per_ccx=cores, threads_per_core=threads))
    assert machine.n_logical_cpus == sockets * ccds * ccxs * cores * threads
    for cpu in machine.cpus:
        assert machine.cpu(cpu.index) is cpu
        assert cpu.index in machine.cpus_in_ccx(cpu.ccx.index)
        assert cpu.index in machine.cpus_in_node(cpu.node.index)
        assert cpu.index in machine.cpus_in_socket(cpu.socket.index)
        sibling = machine.sibling(cpu.index)
        if threads == 1:
            assert sibling is None
        else:
            assert sibling is not None and sibling.core is cpu.core


@settings(max_examples=60, deadline=None)
@given(shape=machine_shapes)
def test_property_distance_symmetric(shape):
    sockets, ccds, ccxs, cores, threads = shape
    machine = Machine(MachineSpec(
        name="prop", sockets=sockets, ccds_per_socket=ccds,
        ccxs_per_ccd=ccxs, cores_per_ccx=cores, threads_per_core=threads))
    for a in range(len(machine.nodes)):
        for b in range(len(machine.nodes)):
            assert machine.distance(a, b) == machine.distance(b, a)
            if a == b:
                assert machine.distance(a, b) == DISTANCE_LOCAL
