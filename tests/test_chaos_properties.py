"""Property-based tests for the chaos campaign engine.

Three invariants the ISSUE's acceptance criteria pin down:

* request conservation — under *any* catalog scenario, every request the
  meter counts as completed appears as exactly one traced root span
  (faults may fail requests, but never lose or double-count one);
* healthy control — a fault-free run always grades PASS with an empty
  blast radius;
* closure confinement — the analyzer never attributes degradation to a
  service outside the fault target's upstream closure, for arbitrary
  synthetic span tables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.campaign import execute_cell, run_cell
from repro.chaos.cascade import analyze_cascade
from repro.chaos.catalog import builtin_catalog, scenario_by_name
from repro.experiments.common import ExperimentSettings
from repro.tracing.collector import TraceCollector

SCENARIO_NAMES = [scenario.name for scenario in builtin_catalog()]


def tiny_settings(seed, users=16):
    return ExperimentSettings.fast(preset="tiny", users=users,
                                   warmup=0.1, duration=0.25, seed=seed)


@given(seed=st.integers(0, 2**16),
       name=st.sampled_from(SCENARIO_NAMES))
@settings(max_examples=6, deadline=None)
def test_request_conservation_under_any_scenario(seed, name):
    scenario = scenario_by_name(name)
    cell_settings = tiny_settings(seed)
    outcome = execute_cell(cell_settings,
                           scenario.schedule(cell_settings),
                           None, trace=True)
    tracer = outcome.tracer
    # Every metered completion is exactly one traced root span — the
    # tracer watches precisely the measurement window.
    assert len(tracer.roots) == outcome.result.completed
    # And no span travels backwards in time, faults or not.
    table = tracer.table
    created = table.created.as_array()
    enqueued = table.enqueued.as_array()
    started = table.started.as_array()
    completed = table.completed.as_array()
    assert (created <= enqueued).all()
    assert (enqueued <= started).all()
    assert (started <= completed).all()


@given(seed=st.integers(0, 2**16),
       users=st.integers(8, 48),
       mode=st.sampled_from(["none", "timeout", "full"]))
@settings(max_examples=6, deadline=None)
def test_healthy_control_grades_pass_with_zero_blast(seed, users, mode):
    payload = run_cell(tiny_settings(seed, users=users),
                       scenario_by_name("control"), mode)
    assert payload["grade"]["grade"] == "PASS"
    assert payload["grade"]["reasons"] == []
    assert payload["cascade"]["blast_radius"] == []
    assert payload["cascade"]["anomalies"] == []
    assert payload["cascade"]["propagation_depth"] == 0
    assert payload["cascade"]["recovered"] is True
    assert payload["error_rate"] == 0.0


@st.composite
def synthetic_tables(draw):
    """A random span forest over 2–5 services, with a target + fault."""
    n_services = draw(st.integers(2, 5))
    services = [f"s{i}" for i in range(n_services)]
    tracer = TraceCollector()
    rid = 0
    for __ in range(draw(st.integers(1, 20))):
        start = draw(st.integers(0, 95)) / 10.0
        # A random tree: span j hangs off a random earlier span.
        ids = []
        for j in range(draw(st.integers(1, n_services))):
            parent = (None if j == 0
                      else ids[draw(st.integers(0, j - 1))])
            latency = draw(st.integers(1, 40)) / 10.0
            tracer.add_span(rid, parent, services[j], "op", j,
                            created_at=start, enqueued_at=start,
                            started_at=start,
                            completed_at=start + latency)
            ids.append(rid)
            rid += 1
    target = draw(st.sampled_from(services + ["*"]))
    fault_start = draw(st.integers(0, 8))
    fault_end = draw(st.integers(fault_start + 1, 10))
    return tracer.table, target, float(fault_start), float(fault_end)


def observed_upstream_closure(table, target):
    """Independent oracle: target + transitive callers over the table's
    observed service edges (every observed service for the fabric)."""
    names = table.services
    observed = {names.decode(int(code))
                for code in set(table.service_code.as_array().tolist())}
    if target == "*":
        return observed
    if target not in observed:
        return set()
    edges = [(names.decode(a), names.decode(b))
             for a, b in table.service_edges()]
    closure = {target}
    changed = True
    while changed:
        changed = False
        for caller, callee in edges:
            if callee in closure and caller not in closure:
                closure.add(caller)
                changed = True
    return closure


@given(case=synthetic_tables())
@settings(max_examples=50, deadline=None)
def test_attribution_never_escapes_the_upstream_closure(case):
    table, target, fault_start, fault_end = case
    report = analyze_cascade(table, target=target,
                             window_start=0.0, window_end=10.0,
                             fault_start=fault_start,
                             fault_end=fault_end)
    closure = observed_upstream_closure(table, target)
    assert set(report.blast_radius) <= closure
    assert not set(report.anomalies) & closure
    assert not set(report.blast_radius) & set(report.anomalies)
    # The analyzer is a pure function of its inputs.
    again = analyze_cascade(table, target=target,
                            window_start=0.0, window_end=10.0,
                            fault_start=fault_start,
                            fault_end=fault_end)
    assert again.to_dict() == report.to_dict()
