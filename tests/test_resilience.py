"""Tests for the resilience layer: deadlines, retries, breakers,
degradation — plus the load-balancer dead-replica regression and the E13
experiment's acceptance shape."""

import pytest

from repro._errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceUnavailableError,
)
from repro._units import ms
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.metrics import ResilienceStats
from repro.services import (
    CircuitBreaker,
    Deployment,
    ResilienceConfig,
    RetryPolicy,
    ServiceSpec,
)
from repro.services.loadbalancer import LoadBalancer
from repro.sim.rand import RandomStreams
from repro.topology import tiny_machine
from repro.workload import ClosedLoopWorkload, FaultInjector


def echo_system(replicas=2, demand=ms(1.0), resilience=None, workers=2,
                fallback=None):
    deployment = Deployment(tiny_machine(), seed=0,
                            smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel(),
                            resilience=resilience)
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("svc", 1024, 1024, 0.1, 0.1)
    spec = ServiceSpec("svc", profile, workers=workers)

    @spec.endpoint("op")
    def op(ctx):
        yield ctx.submit_demand(demand)
        return "ok"

    if fallback is not None:
        spec.add_fallback("op", fallback)
    for __ in range(replicas):
        deployment.add_instance(spec)
    return deployment


def session(user_id):
    while True:
        yield ("svc", "op", None)


def resilient_clients(deployment, n_clients, stop_at, gap=0.005):
    """Protected-path callers (the workload edge is deliberately not)."""
    outcomes = {"ok": 0, "err": 0}

    def client():
        sim = deployment.sim
        while sim.now < stop_at:
            done = deployment.dispatch("svc", "op")
            try:
                yield done
                outcomes["ok"] += 1
            except Exception:
                outcomes["err"] += 1
            yield sim.timeout(gap)

    for __ in range(n_clients):
        deployment.sim.process(client())
    return outcomes


# ----------------------------------------------------------------------
# Configuration objects
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ConfigurationError):
        ResilienceConfig(timeout=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(retries=-1)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(jitter=1.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(retry_budget=-0.1)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(breaker_failure_threshold=0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(breaker_recovery_time=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(breaker_half_open_max=0)


def test_config_inert_by_default_and_active_per_knob():
    assert not ResilienceConfig().active
    assert ResilienceConfig(timeout=0.1).active
    assert ResilienceConfig(retries=1).active
    assert ResilienceConfig(breaker_enabled=True).active
    assert ResilienceConfig(degradation=True).active


def test_config_round_trips_through_dict():
    config = ResilienceConfig(timeout=0.2, retries=3, breaker_enabled=True,
                              jitter=0.05, degradation=True)
    assert ResilienceConfig.from_dict(config.to_dict()) == config


def test_inert_config_uses_plain_dispatch_path():
    deployment = echo_system(resilience=ResilienceConfig())
    assert deployment.resilience is None
    done = deployment.dispatch("svc", "op")
    deployment.run()
    assert done.ok
    assert deployment.resilience_stats.calls == 0  # plain path, no stats


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_backoff_sequence_is_deterministic_and_capped():
    config = ResilienceConfig(retries=5, backoff_base=0.010,
                              backoff_factor=2.0, backoff_cap=0.035,
                              jitter=0.1)
    a = RetryPolicy(config, RandomStreams(7))
    b = RetryPolicy(config, RandomStreams(7))
    delays_a = [a.backoff("svc", i) for i in range(1, 6)]
    delays_b = [b.backoff("svc", i) for i in range(1, 6)]
    assert delays_a == delays_b  # same seed, same stream, same draws
    for index, delay in enumerate(delays_a, start=1):
        nominal = min(0.035, 0.010 * 2.0 ** (index - 1))
        assert nominal * 0.9 <= delay <= nominal * 1.1
    assert max(delays_a) <= 0.035 * 1.1


def test_backoff_without_jitter_is_exact():
    config = ResilienceConfig(retries=3, backoff_base=0.010,
                              backoff_factor=2.0, jitter=0.0)
    policy = RetryPolicy(config, RandomStreams(0))
    assert [policy.backoff("svc", i) for i in (1, 2, 3)] == [
        0.010, 0.020, 0.040]


def test_retry_budget_gate():
    config = ResilienceConfig(retries=10, retry_budget=0.2)
    policy = RetryPolicy(config, RandomStreams(0))
    stats = ResilienceStats(calls=10, retries=1)
    assert policy.should_retry(1, stats)  # 2 <= 0.2 * 10
    stats.retries = 2
    assert not policy.should_retry(1, stats)  # 3 > 2
    assert stats.budget_denied == 1
    assert not policy.should_retry(11, stats)  # per-call cap, too


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, recovery_time=1.0)
    for __ in range(2):
        breaker.record_failure(0.0)
    assert breaker.available(0.0)
    breaker.record_failure(0.0)
    assert not breaker.available(0.5)
    assert breaker.opened_count == 1


def test_breaker_success_resets_failure_count():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure(0.0)
    breaker.record_success(0.0)
    breaker.record_failure(0.0)
    assert breaker.available(0.0)  # streak was broken


def test_breaker_half_open_probe_cycle():
    breaker = CircuitBreaker(failure_threshold=1, recovery_time=1.0,
                             half_open_max=1)
    breaker.record_failure(0.0)  # trips open
    assert not breaker.available(0.9)
    assert breaker.available(1.0)  # half-open: one probe allowed
    breaker.note_dispatch(1.0)
    assert not breaker.available(1.0)  # probe slot taken
    breaker.record_failure(1.1)  # probe failed: re-open, clock restarts
    assert breaker.opened_count == 2
    assert not breaker.available(2.0)
    assert breaker.available(2.2)
    breaker.note_dispatch(2.2)
    breaker.record_success(2.3)  # probe succeeded: closed again
    assert breaker.available(2.3)
    assert breaker.opened_count == 2


# ----------------------------------------------------------------------
# Deadlines (gRPC semantics: one deadline spans all attempts)
# ----------------------------------------------------------------------
def test_timeout_fails_slow_call():
    deployment = echo_system(
        replicas=1, demand=ms(50.0),
        resilience=ResilienceConfig(timeout=0.005))
    done = deployment.dispatch("svc", "op")
    done.defuse()
    deployment.run()
    assert not done.ok
    assert isinstance(done.value, DeadlineExceededError)
    stats = deployment.resilience_stats
    assert stats.timeouts == 1
    assert stats.errors == 1
    assert stats.resolved() == stats.calls == 1


def test_deadline_spans_attempts_not_each_attempt():
    # A timed-out attempt burned the whole budget: no retry happens even
    # though retries are configured.
    deployment = echo_system(
        replicas=2, demand=ms(50.0),
        resilience=ResilienceConfig(timeout=0.005, retries=3,
                                    retry_budget=10.0))
    done = deployment.dispatch("svc", "op")
    done.defuse()
    start = deployment.sim.now
    deployment.run()
    stats = deployment.resilience_stats
    assert stats.attempts == 1
    assert stats.retries == 0
    # ... and the caller saw the failure at the deadline, not at 4x it.
    assert done.triggered


def test_retry_recovers_after_replica_restore():
    # Fast failures leave the deadline budget intact, so retries can
    # bridge a kill/restore gap: attempts at t=0.1, 0.11, 0.13 against a
    # replica restored at t=0.12.
    deployment = echo_system(
        replicas=1,
        resilience=ResilienceConfig(timeout=1.0, retries=2,
                                    backoff_base=0.010, jitter=0.0,
                                    retry_budget=10.0))
    injector = FaultInjector(deployment)
    injector.kill_at(0.1, "svc", restore_after=0.02)
    results = {}

    def fire():
        results["done"] = deployment.dispatch("svc", "op")

    deployment.sim.call_at(0.1001, fire)
    deployment.run()
    assert results["done"].ok
    stats = deployment.resilience_stats
    assert stats.successes == 1
    assert stats.retries >= 1
    assert stats.failures >= 1


def test_degradation_serves_fallback_when_all_replicas_dead():
    deployment = echo_system(
        replicas=1, fallback="static",
        resilience=ResilienceConfig(timeout=0.05, retries=1,
                                    degradation=True, retry_budget=10.0))
    instance = deployment.registry.instances_of("svc")[0]
    deployment.remove_instance(instance)
    done = deployment.dispatch("svc", "op")
    deployment.run()
    assert done.ok
    assert done.value == "static"
    assert deployment.resilience_stats.degraded == 1
    assert deployment.resilience_stats.errors == 0


def test_error_when_exhausted_without_fallback():
    deployment = echo_system(
        replicas=1,
        resilience=ResilienceConfig(timeout=0.05, retries=1,
                                    degradation=True, retry_budget=10.0))
    deployment.remove_instance(deployment.registry.instances_of("svc")[0])
    done = deployment.dispatch("svc", "op")
    done.defuse()
    deployment.run()
    assert not done.ok
    assert deployment.resilience_stats.errors == 1


def test_dispatch_unknown_service_raises_synchronously():
    deployment = echo_system(resilience=ResilienceConfig(timeout=0.1))
    with pytest.raises(ConfigurationError):
        deployment.dispatch("nope", "op")


def test_unprotected_dispatch_bypasses_resilience():
    deployment = echo_system(
        replicas=1, demand=ms(50.0),
        resilience=ResilienceConfig(timeout=0.005))
    done = deployment.dispatch("svc", "op", protected=False)
    deployment.run()
    assert done.ok  # no deadline was applied
    assert deployment.resilience_stats.calls == 0


# ----------------------------------------------------------------------
# Breakers in the dispatch loop
# ----------------------------------------------------------------------
def test_breaker_ejects_slow_replica_and_recovers():
    config = ResilienceConfig(timeout=0.02, retries=2, retry_budget=1.0,
                              breaker_enabled=True,
                              breaker_failure_threshold=2,
                              breaker_recovery_time=0.1, jitter=0.0,
                              backoff_base=0.001)
    deployment = echo_system(replicas=2, demand=ms(2.0), resilience=config)
    injector = FaultInjector(deployment)
    injector.slow_at(0.2, "svc", replica_index=0, factor=100.0,
                     duration=0.4)
    outcomes = resilient_clients(deployment, n_clients=4, stop_at=1.4)
    deployment.run(until=1.5)
    slow, healthy = deployment.registry.instances_of("svc")
    assert slow.breaker is not None and healthy.breaker is not None
    assert slow.breaker.opened_count >= 1
    assert healthy.breaker.opened_count == 0
    # After recovery the slow replica serves again: probes re-closed it.
    assert slow.breaker.available(deployment.sim.now)
    assert outcomes["ok"] > 100
    assert outcomes["err"] < outcomes["ok"] * 0.2


def test_all_breakers_open_degrades_fast():
    config = ResilienceConfig(timeout=0.05, retries=2, retry_budget=10.0,
                              breaker_enabled=True,
                              breaker_failure_threshold=1,
                              breaker_recovery_time=10.0,
                              backoff_base=0.001, jitter=0.0,
                              degradation=True)
    deployment = echo_system(replicas=1, demand=ms(1.0), resilience=config,
                             fallback="static")
    instance = deployment.registry.instances_of("svc")[0]
    resume = deployment.sim.event()
    instance.pause(resume)  # stall forever: every attempt times out

    first = deployment.dispatch("svc", "op")
    deployment.run()
    # First call burned its deadline, tripped the breaker, degraded.
    assert first.ok and first.value == "static"
    assert instance.breaker.opened_count == 1
    opened_at = deployment.sim.now

    second = deployment.dispatch("svc", "op")
    deployment.run()
    # Second call never dispatched: fail-fast at the balancer, then
    # degradation — resolved in backoff time, far under the deadline.
    assert second.ok and second.value == "static"
    assert deployment.resilience_stats.breaker_rejected >= 3
    assert deployment.sim.now - opened_at < 0.01


def test_pick_raises_service_unavailable_when_all_breakers_open():
    config = ResilienceConfig(breaker_enabled=True, timeout=0.05,
                              breaker_failure_threshold=1,
                              breaker_recovery_time=5.0)
    deployment = echo_system(replicas=2, resilience=config)
    for instance in deployment.registry.instances_of("svc"):
        instance.breaker.record_failure(0.0)
    with pytest.raises(ServiceUnavailableError):
        deployment.registry.lookup("svc", now=1.0)


# ----------------------------------------------------------------------
# Load balancer: dead-replica removal mid-rotation (regression)
# ----------------------------------------------------------------------
class _FakeInstance:
    def __init__(self, instance_id):
        self.instance_id = instance_id
        self.accepting = True
        self.breaker = None
        self.outstanding = 0

    def __repr__(self):
        return f"<fake {self.instance_id}>"


def test_remove_behind_cursor_keeps_rotation_successor():
    balancer = LoadBalancer("svc")
    a, b, c = (_FakeInstance(i) for i in range(3))
    for instance in (a, b, c):
        balancer.add(instance)
    assert balancer.pick() is a  # cursor now points at b
    balancer.remove(a)
    # The rotation continues with a's successor, not back at index 0.
    assert [balancer.pick() for __ in range(4)] == [b, c, b, c]


def test_remove_ahead_of_cursor_does_not_skip():
    balancer = LoadBalancer("svc")
    a, b, c = (_FakeInstance(i) for i in range(3))
    for instance in (a, b, c):
        balancer.add(instance)
    assert balancer.pick() is a
    balancer.remove(c)  # ahead of the cursor
    assert [balancer.pick() for __ in range(4)] == [b, a, b, a]


def test_remove_at_cursor_position_picks_next_survivor():
    balancer = LoadBalancer("svc")
    a, b, c = (_FakeInstance(i) for i in range(3))
    for instance in (a, b, c):
        balancer.add(instance)
    assert balancer.pick() is a
    balancer.remove(b)  # exactly where the cursor points
    assert [balancer.pick() for __ in range(4)] == [c, a, c, a]


def test_kill_during_pick_heavy_window_never_routes_to_dead_replica():
    deployment = echo_system(replicas=3)
    injector = FaultInjector(deployment)
    victim = deployment.registry.instances_of("svc")[1]
    injector.kill_at(0.5, "svc", replica_index=1)
    workload = ClosedLoopWorkload(deployment, session,
                                  n_users=8, think_time=0.001)
    workload.start()
    deployment.run(until=0.6)
    rejected_at_kill = victim.rejected
    completed_at_kill = victim.completed + victim.outstanding
    deployment.run(until=1.5)
    # Nothing new ever reached the dead replica after deregistration.
    assert victim.rejected == rejected_at_kill
    assert victim.completed <= completed_at_kill
    survivors = deployment.registry.instances_of("svc")
    assert len(survivors) == 2
    assert all(s.completed > 100 for s in survivors)


# ----------------------------------------------------------------------
# Instance-side deadline enforcement
# ----------------------------------------------------------------------
def test_queued_work_past_deadline_is_dropped_not_executed():
    # One worker, deep queue: queued requests outlive the deadline and
    # must be dropped at dequeue instead of burning CPU.
    deployment = echo_system(
        replicas=1, workers=1, demand=ms(20.0),
        resilience=ResilienceConfig(timeout=0.03))
    events = [deployment.dispatch("svc", "op") for __ in range(6)]
    for event in events:
        event.defuse()
    deployment.run()
    instance = deployment.registry.instances_of("svc")[0]
    assert instance.expired >= 3
    assert instance.completed <= 2
    stats = deployment.resilience_stats
    assert stats.resolved() == stats.calls == 6


# ----------------------------------------------------------------------
# E13: the experiment's acceptance shape at test scale
# ----------------------------------------------------------------------
def test_e13_full_resilience_beats_none_under_slow_fault():
    from repro.experiments import e13_fault_tolerance as e13
    from repro.experiments.common import ExperimentSettings

    settings = ExperimentSettings.fast(preset="tiny", users=64,
                                       warmup=0.3, duration=1.2)
    points = {(p.param("scenario"), p.param("resilience")): p
              for p in e13.sweep_points(settings)}
    unprotected = e13.run_sweep_point(points[("slow", "none")])
    protected = e13.run_sweep_point(points[("slow", "full")])
    assert protected["p99_ms"] < unprotected["p99_ms"]
    assert protected["breaker_opens"] >= 1
    assert protected["retry_amplification"] <= 1.25 + 1e-9


def test_report_includes_fault_tolerance_digest():
    from repro.experiments.common import ExperimentResult
    from repro.report import build_report

    rows = []
    for scenario, p99s in (("healthy", (100.0, 100.0, 100.0)),
                           ("slow", (600.0, 300.0, 250.0))):
        for mode, p99 in zip(("none", "timeout", "full"), p99s):
            rows.append({"scenario": scenario, "resilience": mode,
                         "throughput_rps": 1000.0, "p99_ms": p99,
                         "error_rate_pct": 1.0, "degraded": 3,
                         "retry_amp": 1.1, "breaker_opens": 2})
    result = ExperimentResult("E13", "Fault tolerance", rows)
    report = build_report([result])
    assert "## Fault-tolerance digest" in report
    assert "| slow | 600.0 | 250.0 | +58.3% |" in report


def test_e13_schedules_and_configs_are_json_native():
    import json

    from repro.experiments import e13_fault_tolerance as e13
    from repro.experiments.common import ExperimentSettings

    settings = ExperimentSettings.fast()
    for scenario in e13.SCENARIOS:
        json.dumps(e13.fault_schedule(scenario, settings))
    for point in e13.sweep_points(settings):
        json.dumps(point.identity())
    with pytest.raises(ValueError):
        e13.fault_schedule("nope", settings)
    with pytest.raises(ValueError):
        e13.resilience_config("nope")


# ----------------------------------------------------------------------
# Load balancer: rotation anchored to stable order under open breakers
# ----------------------------------------------------------------------
class _FakeBreaker:
    def __init__(self):
        self.open = False

    def available(self, now):
        return not self.open


def test_breaker_open_does_not_skew_round_robin_fairness():
    balancer = LoadBalancer("svc")
    a, b, c = (_FakeInstance(i) for i in range(3))
    for instance in (a, b, c):
        instance.breaker = _FakeBreaker()
        balancer.add(instance)
    b.breaker.open = True
    picks = [balancer.pick() for __ in range(8)]
    assert b not in picks
    # Survivors split the traffic evenly instead of one absorbing it.
    assert picks.count(a) == picks.count(c) == 4
    # Once the breaker closes, rotation resumes over the stable order
    # without resetting or skipping.
    b.breaker.open = False
    assert [balancer.pick() for __ in range(3)] == [a, b, c]


def test_breaker_flap_never_double_picks_one_survivor():
    # The old cursor indexed the breaker-filtered candidate list, so a
    # breaker flapping between picks changed the cursor's meaning and
    # could hand the same survivor several consecutive picks while
    # starving another.  Anchored rotation never picks the same replica
    # twice in a row while an alternative is available.
    balancer = LoadBalancer("svc")
    a, b, c = (_FakeInstance(i) for i in range(3))
    for instance in (a, b, c):
        instance.breaker = _FakeBreaker()
        balancer.add(instance)
    picks = []
    for i in range(12):
        a.breaker.open = i % 2 == 1
        picks.append(balancer.pick())
    assert all(first is not second
               for first, second in zip(picks, picks[1:]))
    assert set(picks) == {a, b, c}
