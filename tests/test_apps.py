"""Declarative application specs: validation, round-trip, determinism.

Covers the :mod:`repro.apps` layer introduced with the cross-application
family: eager spec validation (unknown call targets, cycles, negative
demands, broken role bindings), byte-stable JSON round-trips, the
bundled-spec lint gate, and per-application determinism smoke digests
for the two non-TeaStore graphs on every kernel backend.
"""

import dataclasses
import hashlib
import json

import pytest

from repro._errors import ConfigurationError
from repro.apps import (
    APP_NAMES,
    deploy_application,
    get_app,
    load_bundled,
    loads,
    verify_bundled,
)
from repro.apps.spec import (
    ApplicationSpec,
    EndpointDef,
    ServiceDef,
    SessionDef,
)
from repro.chaos.catalog import builtin_catalog, resolve_target
from repro.experiments.common import (
    ExperimentSettings,
    default_counts,
    run_store,
)
from repro.services.deployment import Deployment
from repro.sim import kernel
from repro.memory.profile import WorkloadProfile

from tests._kernels import backend_params


def _profile(name):
    return WorkloadProfile(name=name, code_bytes=1 << 20,
                           data_bytes=1 << 20, mem_intensity=0.3,
                           frontend_intensity=0.3)


def _service(name, endpoints, shared_lock=False, demand_weight=0.5):
    return ServiceDef(name=name, profile=_profile(name),
                      replicas=1, workers=4, fast_replicas=1,
                      fast_workers=4, demand_weight=demand_weight,
                      shared_lock=shared_lock, endpoints=endpoints)


def _minimal_spec(**overrides):
    """A tiny two-service app; overrides patch individual fields."""
    values = dict(
        name="mini",
        description="two services",
        services=(
            _service("front", (
                EndpointDef(name="home", steps=(
                    {"op": "compute", "demand": 0.001},
                    {"op": "call", "service": "back",
                     "endpoint": "load"},
                )),
            )),
            _service("back", (
                EndpointDef(name="load", steps=(
                    {"op": "compute", "demand": 0.002},
                )),
            )),
        ),
        sessions=(
            SessionDef(name="browse", service="front", start="home",
                       transitions={"home": (("home", 1.0),)}),
        ),
        default_session="browse",
        chaos_targets={"orchestrator": "front", "hottest": "front",
                       "storage": "back"},
    )
    values.update(overrides)
    return ApplicationSpec(**values)


# ----------------------------------------------------------------------
# Eager validation
# ----------------------------------------------------------------------
def test_minimal_spec_validates():
    spec = _minimal_spec()
    assert spec.call_graph() == {"front": ("back",), "back": ()}


def test_unknown_call_target_service_raises():
    with pytest.raises(ConfigurationError, match="unknown call target"):
        _minimal_spec(services=(
            dataclasses.replace(
                _minimal_spec().services[0],
                endpoints=(EndpointDef(name="home", steps=(
                    {"op": "call", "service": "ghost",
                     "endpoint": "load"},)),)),
            _minimal_spec().services[1],
        ))


def test_unknown_call_target_endpoint_raises():
    with pytest.raises(ConfigurationError, match="unknown call target"):
        _minimal_spec(services=(
            dataclasses.replace(
                _minimal_spec().services[0],
                endpoints=(EndpointDef(name="home", steps=(
                    {"op": "call", "service": "back",
                     "endpoint": "ghost"},)),)),
            _minimal_spec().services[1],
        ))


def test_cyclic_call_graph_raises():
    back = dataclasses.replace(
        _minimal_spec().services[1],
        endpoints=(EndpointDef(name="load", steps=(
            {"op": "call", "service": "front", "endpoint": "home"},)),))
    with pytest.raises(ConfigurationError, match="cyclic call graph"):
        _minimal_spec(services=(_minimal_spec().services[0], back))


def test_negative_demand_raises():
    with pytest.raises(ConfigurationError, match="negative demand"):
        EndpointDef(name="home", steps=(
            {"op": "compute", "demand": -0.001},))


def test_unknown_step_op_raises():
    with pytest.raises(ConfigurationError):
        EndpointDef(name="home", steps=({"op": "teleport"},))


def test_serialized_query_requires_shared_lock():
    back = dataclasses.replace(
        _minimal_spec().services[1],
        endpoints=(EndpointDef(name="load", steps=(
            {"op": "serialized_query", "serial_fraction": 0.5},)),))
    with pytest.raises(ConfigurationError, match="shared_lock"):
        _minimal_spec(services=(_minimal_spec().services[0], back))


def test_session_transition_probabilities_must_sum_to_one():
    with pytest.raises(ConfigurationError):
        _minimal_spec(sessions=(
            SessionDef(name="browse", service="front", start="home",
                       transitions={"home": (("home", 0.5),)}),))


def test_missing_chaos_role_binding_raises():
    with pytest.raises(ConfigurationError):
        _minimal_spec(chaos_targets={"orchestrator": "front"})


def test_chaos_role_bound_to_unknown_service_raises():
    with pytest.raises(ConfigurationError):
        _minimal_spec(chaos_targets={"orchestrator": "front",
                                     "hottest": "front",
                                     "storage": "ghost"})


def test_malformed_json_raises():
    with pytest.raises(ConfigurationError, match="malformed application"):
        loads("{not json")


def test_unknown_app_name_raises():
    with pytest.raises(ConfigurationError, match="unknown application"):
        get_app("webstore")


# ----------------------------------------------------------------------
# Round-trip and the bundled lint gate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", APP_NAMES)
def test_spec_round_trip_is_byte_stable(name):
    spec = get_app(name)
    text = spec.dumps()
    reloaded = loads(text)
    assert reloaded.dumps() == text
    assert reloaded.to_dict() == spec.to_dict()


@pytest.mark.parametrize("name", APP_NAMES)
def test_bundled_file_matches_builder(name):
    assert load_bundled(name).to_dict() == get_app(name).to_dict()


def test_verify_bundled_reports_no_problems():
    assert verify_bundled() == []


def test_minimal_spec_round_trips_through_dict():
    spec = _minimal_spec()
    assert ApplicationSpec.from_dict(spec.to_dict()).dumps() == spec.dumps()


# ----------------------------------------------------------------------
# Chaos catalog derivation for the new graphs
# ----------------------------------------------------------------------
def test_boutique_chaos_targets_resolve():
    app = get_app("boutique")
    assert resolve_target("orchestrator", app) == "frontend"
    assert resolve_target("hottest", app) == "currency"
    assert resolve_target("storage", app) == "redis"


def test_socialnet_catalog_derives_blast_from_graph():
    app = get_app("socialnet")
    catalog = builtin_catalog(app)
    db_io = next(s for s in catalog if s.name == "db-io")
    assert db_io.target_for(app) == "post_storage"
    assert db_io.expectation.allowed_blast == (
        "compose", "frontend", "home_timeline", "post_storage",
        "user_timeline")
    fabric = next(s for s in catalog if s.name == "net-saturation")
    assert set(fabric.expectation.allowed_blast) == set(app.service_names())


def test_teastore_catalog_is_unchanged_by_derivation():
    cell = builtin_catalog()[1].to_dict()
    assert cell["expectation"]["allowed_blast"] == ["auth", "webui"]
    assert cell["expectation"]["max_depth"] == 2


# ----------------------------------------------------------------------
# Experiment plumbing
# ----------------------------------------------------------------------
def _settings(app, seed=1):
    return ExperimentSettings.fast(preset="tiny", users=32, warmup=0.1,
                                   duration=0.25, seed=seed, app=app)


def test_default_counts_follow_the_active_application():
    counts = default_counts(_settings("boutique"))
    assert set(counts) == set(get_app("boutique").service_names())
    assert counts["frontend"] == get_app("boutique", fast=True).service(
        "frontend").replicas


def test_run_store_rejects_teastore_overrides_for_other_apps():
    from repro.teastore.config import TeaStoreConfig
    with pytest.raises(ConfigurationError, match="TeaStore-specific"):
        run_store(_settings("boutique"), store_config=TeaStoreConfig())


def test_replicas_error_names_the_apps_own_services():
    settings = _settings("socialnet")
    deployment = Deployment(settings.machine(), seed=1)
    store = deploy_application(deployment, settings.application())
    with pytest.raises(ConfigurationError) as excinfo:
        store.replicas("webui")
    assert "post_storage" in str(excinfo.value)
    assert "webui" not in str(excinfo.value).split("known:")[1]


# ----------------------------------------------------------------------
# Determinism smoke digests (both kernels, both new apps)
# ----------------------------------------------------------------------
def _run_digest(app, backend):
    with kernel.use_backend(backend):
        result, __, store = run_store(_settings(app))
    material = json.dumps({
        "throughput": result.throughput,
        "p99": result.latency_p99,
        "completed": result.completed,
        "errors": result.errors,
        "per_service": result.service_utilization,
        "counts": store.replica_counts(),
    }, sort_keys=True)
    return hashlib.sha256(material.encode()).hexdigest()


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("app", ("boutique", "socialnet"))
def test_app_runs_are_deterministic_per_kernel(app, backend):
    first = _run_digest(app, backend)
    second = _run_digest(app, backend)
    assert first == second
    result, __, __ = run_store(_settings(app))
    assert result.completed > 0
    assert result.errors == 0


@pytest.mark.parametrize("app", ("boutique", "socialnet"))
def test_app_digests_match_across_kernels(app):
    if not kernel.compiled_available():
        pytest.skip("compiled kernel not built")
    assert _run_digest(app, "python") == _run_digest(app, "compiled")
