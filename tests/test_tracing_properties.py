"""Property tests for the tracing interval algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing.collector import _merge, _subtract, _union_length

intervals = st.lists(
    st.tuples(st.floats(min_value=0, max_value=100),
              st.floats(min_value=0, max_value=100)).map(
        lambda pair: (min(pair), max(pair))),
    max_size=15,
).map(lambda xs: [(s, e) for s, e in xs if e > s])


@settings(max_examples=200, deadline=None)
@given(xs=intervals)
def test_merge_produces_disjoint_sorted(xs):
    merged = _merge(xs)
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    for start, end in merged:
        assert start < end


@settings(max_examples=200, deadline=None)
@given(xs=intervals)
def test_union_length_invariant_under_merge(xs):
    assert abs(_union_length(xs) - _union_length(_merge(xs))) < 1e-9


@settings(max_examples=200, deadline=None)
@given(xs=intervals)
def test_union_length_bounded_by_span(xs):
    if not xs:
        return
    lo = min(s for s, __ in xs)
    hi = max(e for __, e in xs)
    assert _union_length(xs) <= (hi - lo) + 1e-9


@settings(max_examples=200, deadline=None)
@given(base_start=st.floats(min_value=0, max_value=50),
       length=st.floats(min_value=0.1, max_value=50),
       holes=intervals)
def test_subtract_partitions_the_base(base_start, length, holes):
    """|base| == |base - holes| + |base ∩ holes|."""
    base = (base_start, base_start + length)
    remainder = _subtract(base, holes)
    clipped = [(max(s, base[0]), min(e, base[1])) for s, e in holes]
    clipped = [(s, e) for s, e in clipped if e > s]
    assert abs((length - _union_length(remainder))
               - _union_length(clipped)) < 1e-6
    # Remainder intervals lie inside the base and avoid every hole.
    for start, end in remainder:
        assert base[0] - 1e-9 <= start < end <= base[1] + 1e-9
        midpoint = (start + end) / 2
        for hole_start, hole_end in clipped:
            assert not hole_start < midpoint < hole_end


@settings(max_examples=100, deadline=None)
@given(holes=intervals)
def test_subtract_with_covering_hole_is_empty(holes):
    base = (10.0, 20.0)
    assert _subtract(base, [(0.0, 100.0)] + holes) == []


def test_subtract_edge_cases():
    assert _subtract((0.0, 10.0), []) == [(0.0, 10.0)]
    assert _subtract((0.0, 10.0), [(2.0, 3.0)]) == [(0.0, 2.0), (3.0, 10.0)]
    assert _subtract((0.0, 10.0), [(0.0, 5.0)]) == [(5.0, 10.0)]
    assert _subtract((0.0, 10.0), [(5.0, 10.0)]) == [(0.0, 5.0)]
    assert _subtract((0.0, 10.0), [(-5.0, 0.0)]) == [(0.0, 10.0)]
    assert _subtract((0.0, 10.0), [(10.0, 15.0)]) == [(0.0, 10.0)]
