"""Tests for the greedy CCX-budget optimizer (synthetic evaluators)."""

import pytest

from repro._errors import PlacementError
from repro.placement import optimize_ccx_budget
from repro.topology import single_socket_rome

COUNTS = {"webui": 4, "auth": 1, "db": 1}
WEIGHTS = {"webui": 0.4, "auth": 0.3, "db": 0.3}


def ccx_count(machine, allocation, service):
    return len({machine.cpu(c).ccx.index
                for replica in allocation.replicas(service)
                for c in replica.affinity})


def test_optimizer_validation():
    machine = single_socket_rome()
    evaluate = lambda allocation: 1.0
    with pytest.raises(PlacementError):
        optimize_ccx_budget(machine, COUNTS, WEIGHTS, evaluate,
                            iterations=0)
    with pytest.raises(PlacementError):
        optimize_ccx_budget(machine, COUNTS, WEIGHTS, evaluate,
                            shift_fraction=1.0)


def test_optimizer_stops_when_no_improvement():
    machine = single_socket_rome()
    calls = []

    def flat(allocation):
        calls.append(allocation)
        return 1.0  # nothing ever improves

    best, history = optimize_ccx_budget(machine, COUNTS, WEIGHTS, flat,
                                        iterations=5)
    # Initial evaluation + one full sweep of rejected proposals.
    accepted = [step for step in history if step.accepted]
    assert len(accepted) == 1
    assert history[-1].accepted is False
    assert best.replica_counts() == {"webui": 4, "auth": 1, "db": 1}


def test_optimizer_climbs_toward_preferred_budget():
    machine = single_socket_rome()  # 16 CCXs

    def prefer_big_webui(allocation):
        return ccx_count(machine, allocation, "webui")

    best, history = optimize_ccx_budget(
        machine, COUNTS, WEIGHTS, prefer_big_webui, iterations=10)
    start = optimize_ccx_budget(
        machine, COUNTS, WEIGHTS, lambda a: 0.0, iterations=1)[0]
    assert (ccx_count(machine, best, "webui")
            > ccx_count(machine, start, "webui"))
    assert history[-1].score >= history[0].score
    assert all(b.score >= a.score for a, b in zip(history, history[1:])
               if b.accepted)


def test_optimizer_history_records_weights():
    machine = single_socket_rome()
    best, history = optimize_ccx_budget(
        machine, COUNTS, WEIGHTS,
        lambda allocation: ccx_count(machine, allocation, "db"),
        iterations=3)
    assert history[0].iteration == 0
    for step in history:
        assert set(step.weights) == set(WEIGHTS)
        assert all(w > 0 for w in step.weights.values())


def test_optimizer_result_is_valid_allocation():
    machine = single_socket_rome()
    best, __ = optimize_ccx_budget(
        machine, COUNTS, WEIGHTS,
        lambda allocation: ccx_count(machine, allocation, "auth"),
        iterations=4)
    # Every CCX belongs to exactly one service.
    seen = {}
    for service in COUNTS:
        for replica in best.replicas(service):
            for cpu in replica.affinity:
                ccx = machine.cpu(cpu).ccx.index
                assert seen.setdefault(ccx, service) == service
    assert len(seen) == len(machine.ccxs)
