"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENTS:
        assert experiment_id in out


def test_platform_prints_topology(capsys):
    assert main(["platform", "--preset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "tiny-1n-8t" in out
    assert "Logical CPUs" in out


def test_platform_default_is_paper_machine(capsys):
    assert main(["platform"]) == 0
    assert "128" in capsys.readouterr().out


def test_run_e1_fast(capsys):
    assert main(["run", "e1", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "[E1]" in out


def test_run_e5_fast_with_overrides(capsys):
    assert main(["run", "e5", "--fast", "--seed", "3",
                 "--users", "120"]) == 0
    out = capsys.readouterr().out
    assert "[E5]" in out
    assert "webui" in out


def test_run_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "e99"])


def test_run_rejects_unknown_preset():
    with pytest.raises(SystemExit):
        main(["run", "e1", "--preset", "mega"])


def test_e10_fast_picks_multi_node_machine(capsys):
    assert main(["run", "e10", "--fast", "--users", "150"]) == 0
    out = capsys.readouterr().out
    assert "[E10]" in out


def test_e11_and_a4_registered():
    assert "e11" in EXPERIMENTS
    assert "a4" in EXPERIMENTS


def test_run_e11_fast(capsys):
    assert main(["run", "e11", "--fast", "--users", "200"]) == 0
    out = capsys.readouterr().out
    assert "[E11]" in out
    assert "checkout" in out


def test_platform_json(capsys):
    assert main(["platform", "--preset", "tiny", "--json"]) == 0
    import json
    data = json.loads(capsys.readouterr().out)
    assert data["name"] == "tiny-1n-8t"


def test_run_with_markdown_report(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["run", "e1", "--fast", "--markdown", str(target)]) == 0
    text = target.read_text()
    assert text.startswith("# TeaStore")
    assert "### E1" in text


def test_run_with_explicit_kernel(capsys, monkeypatch):
    from repro.sim import kernel

    monkeypatch.delenv(kernel.KERNEL_ENV, raising=False)
    monkeypatch.setattr(kernel, "_default_backend", None)
    assert main(["run", "e1", "--fast", "--kernel", "python"]) == 0
    import os
    assert os.environ[kernel.KERNEL_ENV] == "python"
    assert kernel.resolve_backend() == "python"


def test_perfbench_profile_prints_report(capsys, monkeypatch):
    from repro.sim import kernel

    monkeypatch.delenv(kernel.KERNEL_ENV, raising=False)
    assert main(["perfbench", "--mode", "smoke", "--slice", "e13",
                 "--profile", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile smoke/e13" in out
    assert "cumulative" in out


def test_run_with_scale_flags(capsys):
    assert main(["run", "e2", "--fast", "--users", "60",
                 "--shards", "2", "--cohort-factor", "5"]) == 0
    assert "[E2]" in capsys.readouterr().out


def test_scale_flags_reach_settings():
    from repro import cli

    args = cli._build_parser().parse_args(
        ["run", "e1", "--fast", "--shards", "4",
         "--cohort-factor", "250"])
    settings = cli._settings_for(args, "e1")
    assert settings.shards == 4
    assert settings.cohort_factor == 250

    defaults = cli._build_parser().parse_args(["run", "e1", "--fast"])
    plain = cli._settings_for(defaults, "e1")
    assert plain.shards == 1
    assert plain.cohort_factor == 1


def test_sweep_accepts_scale_flags():
    from repro import cli

    args = cli._build_parser().parse_args(
        ["sweep", "e2", "--fast", "--shards", "2",
         "--cohort-factor", "10"])
    settings = cli._settings_for(args, "e2")
    assert settings.shards == 2
    assert settings.cohort_factor == 10


def test_perfbench_list_slices(capsys):
    assert main(["perfbench", "--list-slices"]) == 0
    out = capsys.readouterr().out
    assert "e2-100k" in out
    assert "e2-1m" in out
    assert "extended" in out
    assert "shards=8" in out and "cohort_factor=250" in out
