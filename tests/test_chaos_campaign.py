"""Tests for the chaos campaign engine: catalog, grading, CLI, sweeps."""

import json

import pytest

from repro._errors import ConfigurationError
from repro.chaos import campaign
from repro.chaos.cascade import CascadeReport, ServiceImpact
from repro.chaos.catalog import (
    BOTTLENECK_CLASSES,
    Expectation,
    Scenario,
    builtin_catalog,
    resolve_target,
    scenario_by_name,
    upstream_closure,
)
from repro.chaos.grading import grade_scenario
from repro.cli import main
from repro.experiments import e13_fault_tolerance as e13
from repro.experiments.common import ExperimentSettings
from repro.orchestrator import run_sweep
from repro.services.resilience import resilience_preset


def tiny_settings(**overrides):
    values = dict(preset="tiny", users=16, warmup=0.1, duration=0.25,
                  seed=1)
    values.update(overrides)
    return ExperimentSettings.fast(**values)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_builtin_catalog_covers_every_bottleneck_class():
    classes = [scenario.bottleneck_class
               for scenario in builtin_catalog()]
    assert sorted(classes) == sorted(BOTTLENECK_CLASSES)
    names = [scenario.name for scenario in builtin_catalog()]
    assert len(names) == len(set(names))


def test_scenario_round_trips_through_dict():
    for scenario in builtin_catalog():
        assert Scenario.from_dict(scenario.to_dict()) == scenario
    data = builtin_catalog()[1].to_dict()
    assert json.loads(json.dumps(data)) == data  # JSON-native


def test_target_policies_resolve():
    assert resolve_target("orchestrator") == "webui"
    assert resolve_target("hottest") == "auth"
    assert resolve_target("storage") == "db"
    assert resolve_target("fabric") == "*"
    assert resolve_target("service:image") == "image"
    with pytest.raises(ConfigurationError):
        resolve_target("service:nope")
    with pytest.raises(ConfigurationError):
        resolve_target("loudest")


def test_static_upstream_closures():
    assert upstream_closure("db") == {"db", "persistence", "webui"}
    assert upstream_closure("auth") == {"auth", "webui"}
    assert upstream_closure("webui") == {"webui"}
    assert upstream_closure("*") == set(upstream_closure("*"))
    assert len(upstream_closure("*")) == 6


def test_scenario_validation():
    expectation = Expectation()
    with pytest.raises(ConfigurationError):
        Scenario("x", "made-up-class", "storage", (), expectation)
    with pytest.raises(ConfigurationError):
        Scenario("x", "io-contention", "nope", (), expectation)
    with pytest.raises(ConfigurationError):
        Scenario("x", "io-contention", "storage",
                 ({"kind": "meteor", "at": 0.1},), expectation)
    with pytest.raises(ConfigurationError):
        Scenario("x", "io-contention", "storage",
                 ({"kind": "slow", "at": 1.5},), expectation)
    with pytest.raises(ConfigurationError):  # 'factor' is not a hog knob
        Scenario("x", "io-contention", "storage",
                 ({"kind": "hog", "at": 0.1, "factor": 2.0},), expectation)
    with pytest.raises(ConfigurationError):
        Expectation(pass_p99_ratio=3.0, fail_p99_ratio=2.0)
    with pytest.raises(ConfigurationError):
        scenario_by_name("does-not-exist")


def test_relative_schedule_resolves_against_settings():
    cell_settings = tiny_settings(warmup=2.0, duration=4.0)
    scenario = scenario_by_name("db-io")
    [entry] = scenario.schedule(cell_settings)
    assert entry["kind"] == "slow"
    assert entry["service"] == "db"
    assert entry["time"] == pytest.approx(2.0 + 0.10 * 4.0)
    assert entry["duration"] == pytest.approx(0.60 * 4.0)
    assert entry["factor"] == 8.0
    [kill] = scenario_by_name("kill-orchestrator").schedule(cell_settings)
    assert kill["restore_after"] == pytest.approx(0.40 * 4.0)
    [net] = scenario_by_name("net-saturation").schedule(cell_settings)
    assert "service" not in net


# ----------------------------------------------------------------------
# Grading
# ----------------------------------------------------------------------
def make_report(**overrides):
    values = dict(target="db", impacts=(), blast_radius=(),
                  anomalies=(), propagation_depth=0,
                  time_to_recover_s=0.0, recovered=True,
                  root_p99_ratio=1.0, spans=100)
    values.update(overrides)
    return CascadeReport(**values)


def fault_scenario(**expect_overrides):
    expect = dict(allowed_blast=("db", "persistence", "webui"),
                  max_depth=3, max_error_rate=0.05,
                  pass_p99_ratio=1.5, fail_p99_ratio=50.0,
                  recover_within=0.5)
    expect.update(expect_overrides)
    return Scenario("t", "io-contention", "storage",
                    ({"kind": "slow", "at": 0.1, "for": 0.5},),
                    Expectation(**expect))


def test_grade_pass_within_contract():
    report = make_report(blast_radius=("db",), propagation_depth=1,
                         time_to_recover_s=0.2, root_p99_ratio=1.2,
                         impacts=(ServiceImpact("db", 1, 1.0, 2.0, 2.0,
                                                True, 0.2),))
    grade = grade_scenario(fault_scenario(), report,
                           error_rate=0.0, window=1.0)
    assert grade.grade == "PASS"
    assert grade.reasons == ()


def test_grade_fails_when_blast_escapes():
    report = make_report(blast_radius=("auth", "db"))
    grade = grade_scenario(fault_scenario(), report,
                           error_rate=0.0, window=1.0)
    assert grade.grade == "FAIL"
    assert any("escaped" in reason for reason in grade.reasons)


def test_grade_fails_on_depth_error_rate_and_tail():
    deep = make_report(blast_radius=("db",), propagation_depth=4)
    assert grade_scenario(fault_scenario(), deep,
                          error_rate=0.0, window=1.0).grade == "FAIL"
    assert grade_scenario(fault_scenario(), make_report(),
                          error_rate=0.5, window=1.0).grade == "FAIL"
    hot = make_report(root_p99_ratio=60.0)
    assert grade_scenario(fault_scenario(), hot,
                          error_rate=0.0, window=1.0).grade == "FAIL"


def test_grade_fails_when_victims_never_recover():
    report = make_report(
        blast_radius=("db",), propagation_depth=1, recovered=False,
        time_to_recover_s=1.0,
        impacts=(ServiceImpact("db", 1, 1.0, 5.0, 5.0, False, 1.0),))
    grade = grade_scenario(fault_scenario(), report,
                           error_rate=0.0, window=1.0)
    assert grade.grade == "FAIL"
    assert any("never recovered" in reason for reason in grade.reasons)


def test_grade_degraded_on_tail_or_slow_recovery():
    warm = make_report(root_p99_ratio=3.0)
    assert grade_scenario(fault_scenario(), warm,
                          error_rate=0.0, window=1.0).grade == "DEGRADED"
    slow = make_report(blast_radius=("db",), time_to_recover_s=0.9,
                       impacts=(ServiceImpact("db", 1, 1.0, 2.0, 2.0,
                                              True, 0.9),))
    assert grade_scenario(fault_scenario(), slow,
                          error_rate=0.0, window=1.0).grade == "DEGRADED"


def test_control_fails_if_anything_degrades():
    control = scenario_by_name("control")
    clean = make_report(target="webui")
    assert grade_scenario(control, clean,
                          error_rate=0.0, window=1.0).grade == "PASS"
    noisy = make_report(target="webui", anomalies=("db",))
    assert grade_scenario(control, noisy,
                          error_rate=0.0, window=1.0).grade == "FAIL"
    assert grade_scenario(control, clean,
                          error_rate=0.1, window=1.0).grade == "FAIL"


# ----------------------------------------------------------------------
# Presets and the E13 wrapper
# ----------------------------------------------------------------------
def test_resilience_presets_match_e13_configs():
    for mode in ("none", "timeout", "full"):
        assert (resilience_preset(mode, call_timeout=e13.CALL_TIMEOUT)
                == e13.resilience_config(mode))
    with pytest.raises(ConfigurationError):
        resilience_preset("nope")


def test_tracing_does_not_perturb_the_cell():
    cell_settings = tiny_settings()
    schedule = e13.fault_schedule("slow", cell_settings)
    untraced = campaign.execute_cell(cell_settings, schedule,
                                     e13.resilience_config("full"))
    traced = campaign.execute_cell(cell_settings, schedule,
                                   e13.resilience_config("full"),
                                   trace=True)
    assert untraced.tracer is None
    assert len(traced.tracer.table) > 0
    # The tracer only reads completed requests: every metric of the
    # traced run is byte-identical to the untraced one.
    assert traced.result == untraced.result
    assert len(traced.injector.events) == len(untraced.injector.events)


# ----------------------------------------------------------------------
# Campaign sweeps
# ----------------------------------------------------------------------
def test_campaign_points_subset_and_self_containment():
    cell_settings = tiny_settings()
    points = campaign.campaign_points(
        cell_settings, ["control", "db-io"], ["none", "full"])
    assert [point.label for point in points] == [
        "control/none", "control/full", "db-io/none", "db-io/full"]
    # Points are self-contained: the scenario travels inside params.
    rebuilt = Scenario.from_dict(points[2].param("scenario"))
    assert rebuilt == scenario_by_name("db-io")
    with pytest.raises(ConfigurationError):
        campaign.campaign_points(cell_settings, ["nope"], None)


def test_campaign_parallel_matches_sequential():
    cell_settings = tiny_settings()
    points = campaign.campaign_points(
        cell_settings, ["control", "cpu-hog"], ["none", "full"])
    sequential = [campaign.run_sweep_point(point) for point in points]
    outcome = run_sweep("chaos", cell_settings, jobs=4, cache=None,
                        points=points)
    assert json.dumps(list(outcome.payloads), sort_keys=True) \
        == json.dumps(sequential, sort_keys=True)
    expected = campaign.assemble_sweep(cell_settings, sequential)
    assert outcome.result.render() == expected.render()


def test_run_executes_full_catalog():
    result = campaign.run(tiny_settings())
    assert len(result.rows) == len(builtin_catalog()) * 3
    grades = {row["grade"] for row in result.rows}
    assert grades <= {"PASS", "DEGRADED", "FAIL"}
    control_rows = [row for row in result.rows
                    if row["scenario"] == "control"]
    assert all(row["grade"] == "PASS" for row in control_rows)
    assert any(note.startswith("verdicts:") for note in result.notes)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list_scenarios(capsys):
    assert main(["chaos", "--list-scenarios"]) == 0
    out = capsys.readouterr().out
    for scenario in builtin_catalog():
        assert scenario.name in out


def test_cli_campaign_run_grade_and_markdown(tmp_path, capsys):
    artifact = tmp_path / "campaign.json"
    markdown = tmp_path / "campaign.md"
    assert main(["chaos", "run", "--fast", "--preset", "tiny",
                 "--users", "16", "--scenarios", "control",
                 "--modes", "none", "--no-cache",
                 "--out", str(artifact),
                 "--markdown", str(markdown)]) == 0
    out = capsys.readouterr().out
    assert "control" in out and "PASS" in out
    payloads = json.loads(artifact.read_text())["payloads"]
    assert len(payloads) == 1
    assert payloads[0]["grade"]["grade"] == "PASS"
    report = markdown.read_text()
    assert "Chaos verdict rollup" in report
    # Re-grading the artifact passes (exit 0: no FAIL cells).
    assert main(["chaos", "--grade", str(artifact)]) == 0
    assert "control/none: PASS" in capsys.readouterr().out


def test_cli_grade_fails_on_failed_cells(tmp_path, capsys):
    artifact = tmp_path / "bad.json"
    payload = {
        "scenario": "db-io", "resilience": "none", "error_rate": 0.9,
        "cascade": make_report(blast_radius=("db",),
                               propagation_depth=1).to_dict(),
    }
    artifact.write_text(json.dumps(
        {"settings": tiny_settings().to_dict(), "payloads": [payload]}))
    assert main(["chaos", "--grade", str(artifact)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_rejects_bad_jobs(capsys):
    assert main(["chaos", "run", "--jobs", "0"]) == 2
