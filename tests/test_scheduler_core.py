"""Scheduler-core edge cases, pinned identical across kernel backends.

The compiled model layer (``repro.sim._cmodel.SchedCore``) re-implements
the scheduler's dominant loops in C; :class:`~repro.cpu.scheduler
.CpuScheduler` remains the line-for-line reference.  These tests drive
the corners the golden digests reach only statistically — fruitless
steal scans, mid-flight sibling re-rates, fully-masked submissions, and
the SMT-yield boundary values — through both backends and hand-check
the wall-clock arithmetic.
"""

import pytest

from repro._errors import SchedulingError
from repro._units import ms
from repro.cpu import CpuBurst, FlatFrequencyModel, SmtModel, TaskGroup
from repro.cpu.scheduler import make_scheduler
from repro.sim import Simulator
from repro.topology import CpuSet, tiny_machine

from tests._kernels import backend_params

BACKENDS = backend_params()


def build(backend, smt_yield=1.3, online=None):
    """A backend-selected scheduler with flat frequency so wall times
    are hand-checkable (rate = smt_factor / 1.0)."""
    sim = Simulator(kernel=backend)
    machine = tiny_machine()
    scheduler = make_scheduler(
        sim, machine, online=online,
        smt_model=SmtModel(smt_yield),
        frequency_model=FlatFrequencyModel())
    return sim, machine, scheduler


def submit(sim, scheduler, group, demand):
    burst = CpuBurst(demand, group, sim.event())
    scheduler.submit(burst)
    return burst


# ----------------------------------------------------------------------
# Work stealing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_steal_scan_over_fruitless_victims_comes_up_empty(backend):
    """A CPU whose every eligible victim queue is empty goes idle
    without stealing — even while ineligible queues hold work."""
    sim, machine, scheduler = build(backend)
    pinned_a = TaskGroup("a", CpuSet([0]))
    pinned_b = TaskGroup("b", CpuSet([1]))
    # CPU 1 gets a backlog; CPU 0 gets exactly one short burst.
    short = submit(sim, scheduler, pinned_a, ms(1.0))
    backlog = [submit(sim, scheduler, pinned_b, ms(4.0))
               for __ in range(3)]
    sim.run(until=ms(2.0))
    # CPU 0 drained at 1ms; CPU 1's queue still holds two bursts, but
    # they are outside CPU 0's mask, so the steal scan must yield
    # nothing and leave CPU 0 idle.
    assert short.finished_at == pytest.approx(ms(1.0))
    assert scheduler.is_idle(0)
    assert not scheduler.is_idle(1)
    assert scheduler.queue_depth() == 2
    assert scheduler.bursts_stolen == 0
    sim.run()
    assert scheduler.bursts_stolen == 0
    assert all(burst.cpu_index == 1 for burst in backlog)


@pytest.mark.parametrize("backend", BACKENDS)
def test_steal_pulls_backlog_from_sibling_queue(backend):
    """The positive control: an idle CPU with an eligible nonempty
    victim steals its oldest allowed burst."""
    sim, machine, scheduler = build(backend)
    group = TaskGroup("g", CpuSet([0, 1]))
    submit(sim, scheduler, group, ms(1.0))   # runs on CPU 0
    long = submit(sim, scheduler, group, ms(5.0))   # runs on CPU 1
    quick = submit(sim, scheduler, group, ms(0.5))  # queues on CPU 0
    tail = submit(sim, scheduler, group, ms(2.0))   # queues on CPU 1
    sim.run()
    # CPU 0 pops its own queue at 1.0ms, drains it at 1.5ms, then
    # steals ``tail`` out of CPU 1's queue while ``long`` still runs.
    assert scheduler.bursts_stolen == 1
    assert quick.cpu_index == 0
    assert tail.cpu_index == 0
    assert tail.finished_at == pytest.approx(ms(3.5))
    assert long.cpu_index == 1
    assert long.finished_at == pytest.approx(ms(5.0))


# ----------------------------------------------------------------------
# SMT sibling re-rate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_mid_flight_rerate_of_single_sibling(backend):
    """A burst landing on the idle SMT sibling re-rates the one burst
    already in flight on the pair, both ways.

    smt_yield 1.2 → co-run factor 0.6.  The first burst runs alone for
    0.5ms, then co-runs its remaining 0.5ms demand at 0.6:
    0.5 + 0.5/0.6 = 1.3333ms.  The second burst co-runs from 0.5ms and
    has 1.0 - 0.8333*0.6 = 0.5ms demand left when the pair splits, so
    it finishes at 1.8333ms back at full rate.
    """
    sim, machine, scheduler = build(backend, smt_yield=1.2)
    pair = machine.cpus_in_core(0)
    group = TaskGroup("g", pair)
    first = submit(sim, scheduler, group, ms(1.0))
    second = CpuBurst(ms(1.0), group, sim.event())
    sim.call_in(ms(0.5), lambda: scheduler.submit(second))
    sim.run()
    assert first.finished_at == pytest.approx(ms(0.5 + 0.5 / 0.6))
    assert second.finished_at == pytest.approx(ms(0.5 + 0.5 / 0.6 + 0.5))
    # The pair really co-ran: distinct threads of the same core.
    assert {first.cpu_index, second.cpu_index} == set(pair.ids)


# ----------------------------------------------------------------------
# Fully-masked submission
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_submit_with_every_allowed_cpu_offline_raises(backend):
    """A group whose whole mask is offline fails loudly on first
    submission — identically on both backends."""
    sim, machine, scheduler = build(backend, online=CpuSet([0, 1]))
    group = TaskGroup("masked", CpuSet([2, 3]))
    with pytest.raises(SchedulingError, match="no online CPU"):
        submit(sim, scheduler, group, ms(1.0))


# ----------------------------------------------------------------------
# SMT-factor boundary values
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("smt_yield,expected_wall", [
    (1.0, ms(2.0)),   # floor: co-running pair shares one thread's speed
    (2.0, ms(1.0)),   # ceiling: siblings do not interfere at all
])
def test_smt_yield_boundary_values(backend, smt_yield, expected_wall):
    sim, machine, scheduler = build(backend, smt_yield=smt_yield)
    group = TaskGroup("g", machine.cpus_in_core(0))
    a = submit(sim, scheduler, group, ms(1.0))
    b = submit(sim, scheduler, group, ms(1.0))
    sim.run()
    assert a.wall_time == pytest.approx(expected_wall)
    assert b.wall_time == pytest.approx(expected_wall)


def test_smt_yield_outside_bounds_rejected():
    with pytest.raises(SchedulingError):
        SmtModel(0.99)
    with pytest.raises(SchedulingError):
        SmtModel(2.01)


# ----------------------------------------------------------------------
# Cross-backend parity on a mixed workload
# ----------------------------------------------------------------------
def _mixed_workload(backend):
    sim, machine, scheduler = build(backend, smt_yield=1.3)
    pinned = TaskGroup("pinned", machine.cpus_in_core(0))
    free = TaskGroup("free", machine.all_cpus())
    bursts = []
    for index in range(6):
        bursts.append(submit(sim, scheduler, pinned if index % 2 else free,
                             ms(0.5 + 0.25 * index)))
    late = CpuBurst(ms(1.0), free, sim.event())
    sim.call_in(ms(0.75), lambda: scheduler.submit(late))
    bursts.append(late)
    sim.run()
    trace = tuple((burst.cpu_index, burst.started_at, burst.finished_at,
                   burst.wall_time) for burst in bursts)
    counters = (scheduler.bursts_dispatched, scheduler.bursts_stolen,
                scheduler.queue_depth(), scheduler.total_busy_time())
    return trace, counters


def test_backends_agree_exactly_on_mixed_workload():
    from repro.sim import kernel
    if not (kernel.compiled_available() and kernel.model_available()):
        pytest.skip("compiled model layer not built")
    assert _mixed_workload("python") == _mixed_workload("compiled")
