"""Unit tests for allocations and placement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import PlacementError
from repro.placement import (
    Allocation,
    ReplicaPlacement,
    ccx_aware,
    ccx_aware_auto,
    node_spread,
    socket_pack,
    unpinned,
)
from repro.topology import CpuSet, dual_socket_rome, single_socket_rome, small_numa_machine, tiny_machine

COUNTS = {"webui": 2, "auth": 1, "db": 1}
WEIGHTS = {"webui": 0.6, "auth": 0.15, "db": 0.25}


# ---------------------------------------------------------------------------
# Allocation / ReplicaPlacement
# ---------------------------------------------------------------------------

def test_replica_placement_requires_affinity():
    with pytest.raises(PlacementError):
        ReplicaPlacement(CpuSet())


def test_allocation_validation():
    machine = tiny_machine()
    with pytest.raises(PlacementError):
        Allocation(machine, {"svc": []})
    with pytest.raises(PlacementError):
        Allocation(machine, {"svc": [ReplicaPlacement(CpuSet([99]))]})
    with pytest.raises(PlacementError):
        Allocation(machine,
                   {"svc": [ReplicaPlacement(CpuSet([0]), home_node=5)]})
    with pytest.raises(PlacementError):
        Allocation(machine, {"svc": [ReplicaPlacement(CpuSet([7]))]},
                   online=CpuSet([0, 1]))


def test_allocation_accessors():
    machine = tiny_machine()
    allocation = Allocation(machine, {
        "a": [ReplicaPlacement(CpuSet([0, 1]), home_node=0)],
        "b": [ReplicaPlacement(CpuSet([2])),
              ReplicaPlacement(CpuSet([3]))],
    })
    assert allocation.services == ["a", "b"]
    assert allocation.replica_counts() == {"a": 1, "b": 2}
    assert len(allocation.replicas("b")) == 2
    with pytest.raises(PlacementError):
        allocation.replicas("ghost")
    placement = allocation.as_placement()
    assert placement["a"] == [(CpuSet([0, 1]), 0)]
    assert "a#0" in allocation.describe()
    assert "b×2" in repr(allocation)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def test_policies_reject_bad_counts():
    machine = tiny_machine()
    for policy in (unpinned, node_spread, socket_pack):
        with pytest.raises(PlacementError):
            policy(machine, {})
        with pytest.raises(PlacementError):
            policy(machine, {"svc": 0})


def test_unpinned_gives_everyone_everything():
    machine = tiny_machine()
    allocation = unpinned(machine, COUNTS)
    for service in COUNTS:
        for replica in allocation.replicas(service):
            assert replica.affinity == machine.all_cpus()


def test_unpinned_respects_online_subset():
    machine = tiny_machine()
    online = CpuSet([0, 1, 4, 5])
    allocation = unpinned(machine, COUNTS, online=online)
    assert allocation.replicas("webui")[0].affinity == online


def test_node_spread_round_robins_nodes():
    machine = small_numa_machine()  # 2 nodes
    allocation = node_spread(machine, COUNTS)
    nodes_used = [replica.home_node
                  for service in sorted(COUNTS)
                  for replica in allocation.replicas(service)]
    assert set(nodes_used) == {0, 1}
    for service in COUNTS:
        for replica in allocation.replicas(service):
            assert replica.affinity == machine.cpus_in_node(replica.home_node)


def test_node_spread_on_single_node_equals_unpinned_mask():
    machine = tiny_machine()
    allocation = node_spread(machine, COUNTS)
    for service in COUNTS:
        for replica in allocation.replicas(service):
            assert replica.affinity == machine.all_cpus()


def test_socket_pack_confines_to_socket():
    machine = dual_socket_rome()
    allocation = socket_pack(machine, COUNTS, socket=1)
    for service in COUNTS:
        for replica in allocation.replicas(service):
            assert replica.affinity.issubset(machine.cpus_in_socket(1))
            assert replica.home_node == 1


def test_socket_pack_rejects_offline_socket():
    machine = dual_socket_rome()
    online = machine.cpus_in_socket(0)
    with pytest.raises(PlacementError):
        socket_pack(machine, COUNTS, online=online, socket=1)


def test_ccx_aware_validates_weights():
    machine = single_socket_rome()
    with pytest.raises(PlacementError, match="missing"):
        ccx_aware(machine, COUNTS, {"webui": 1.0})
    with pytest.raises(PlacementError, match="positive"):
        ccx_aware(machine, COUNTS, {"webui": 1.0, "auth": 0.0, "db": 1.0})


def test_ccx_aware_needs_enough_ccxs():
    machine = tiny_machine()  # 2 CCXs
    counts = {"a": 1, "b": 1, "c": 1}
    weights = {"a": 1.0, "b": 1.0, "c": 1.0}
    with pytest.raises(PlacementError):
        ccx_aware(machine, counts, weights)


def test_ccx_aware_partitions_are_disjoint_across_services():
    machine = single_socket_rome()
    allocation = ccx_aware(machine, COUNTS, WEIGHTS)
    masks = []
    for service in COUNTS:
        service_mask = CpuSet()
        for replica in allocation.replicas(service):
            service_mask = service_mask | replica.affinity
        masks.append(service_mask)
    for i in range(len(masks)):
        for j in range(i + 1, len(masks)):
            assert masks[i].isdisjoint(masks[j])


def test_ccx_aware_budget_tracks_weights():
    machine = single_socket_rome()  # 16 CCXs
    allocation = ccx_aware(machine, COUNTS, WEIGHTS)
    ccxs_of = {}
    for service in COUNTS:
        ccxs = set()
        for replica in allocation.replicas(service):
            for cpu in replica.affinity:
                ccxs.add(machine.cpu(cpu).ccx.index)
        ccxs_of[service] = len(ccxs)
    assert ccxs_of["webui"] > ccxs_of["db"] > 0
    assert sum(ccxs_of.values()) == 16


def test_ccx_aware_replica_masks_align_to_ccx_boundaries():
    machine = single_socket_rome()
    allocation = ccx_aware(machine, COUNTS, WEIGHTS)
    for service in COUNTS:
        for replica in allocation.replicas(service):
            ccxs = {machine.cpu(c).ccx.index for c in replica.affinity}
            expected = CpuSet()
            for ccx in ccxs:
                expected = expected | machine.cpus_in_ccx(ccx)
            assert replica.affinity == expected


def test_ccx_aware_more_replicas_than_ccxs_share_the_group_evenly():
    machine = small_numa_machine()  # 4 CCXs, 4 cores each
    counts = {"a": 3, "b": 1}
    weights = {"a": 0.5, "b": 0.5}
    allocation = ccx_aware(machine, counts, weights)
    # "a" gets 2 CCXs; its 3 replicas share the identical group mask so
    # round-robin load balancing stays fair.
    replicas = allocation.replicas("a")
    assert len(replicas) == 3
    assert len({r.affinity for r in replicas}) == 1
    assert len(replicas[0].affinity) == 16  # 2 CCXs × 4 cores × SMT2


def test_ccx_aware_many_replicas_on_one_ccx_is_fine():
    machine = tiny_machine()
    counts = {"a": 5, "b": 1}  # 5 replicas share a's single CCX
    weights = {"a": 0.5, "b": 0.5}
    allocation = ccx_aware(machine, counts, weights)
    assert len(allocation.replicas("a")) == 5


def test_ccx_aware_masks_keep_thread_pairs():
    machine = single_socket_rome()
    counts = {"webui": 6, "db": 1}
    weights = {"webui": 0.1, "db": 0.9}  # webui squeezed, replicas share
    allocation = ccx_aware(machine, counts, weights)
    for replica in allocation.replicas("webui"):
        for cpu in replica.affinity:
            sibling = machine.sibling(cpu)
            assert sibling.index in replica.affinity


def test_apportion_shortfall_beats_floored_fraction():
    """A light service already over-served by its minimum-1 floor must
    not win remainder CCXs over a heavy service still short of its
    ideal share."""
    machine = single_socket_rome()  # 16 CCXs
    counts = {"heavy": 1, "mid": 1, "light": 1}
    weights = {"heavy": 0.70, "mid": 0.24, "light": 0.06}
    allocation = ccx_aware(machine, counts, weights)

    def ccxs_of(service):
        return {machine.cpu(c).ccx.index
                for r in allocation.replicas(service)
                for c in r.affinity}

    assert len(ccxs_of("light")) == 1
    assert len(ccxs_of("heavy")) >= 10
    assert len(ccxs_of("mid")) >= 3


def test_ccx_aware_auto_one_replica_per_ccx():
    machine = single_socket_rome()
    allocation = ccx_aware_auto(machine, WEIGHTS, fixed_counts={"db": 1})
    counts = allocation.replica_counts()
    assert counts["db"] == 1
    assert counts["webui"] >= counts["auth"]
    for replica in allocation.replicas("webui"):
        ccxs = {machine.cpu(c).ccx.index for c in replica.affinity}
        assert len(ccxs) == 1  # exactly one L3 domain per replica
    # db spans its whole budget as one instance.
    db_ccxs = {machine.cpu(c).ccx.index
               for c in allocation.replicas("db")[0].affinity}
    assert len(db_ccxs) >= 2


def test_ccx_aware_auto_validation():
    machine = single_socket_rome()
    with pytest.raises(PlacementError):
        ccx_aware_auto(machine, WEIGHTS, fixed_counts={"db": 0})
    tiny = tiny_machine()
    many = {f"s{i}": 1.0 for i in range(5)}
    with pytest.raises(PlacementError):
        ccx_aware_auto(tiny, many)


@settings(max_examples=40, deadline=None)
@given(weights=st.lists(st.floats(min_value=0.01, max_value=10.0),
                        min_size=2, max_size=6))
def test_property_apportionment_uses_every_ccx_exactly_once(weights):
    machine = single_socket_rome()
    services = {f"svc{i}": 1 for i in range(len(weights))}
    weight_map = {f"svc{i}": w for i, w in enumerate(weights)}
    allocation = ccx_aware(machine, services, weight_map)
    seen: dict[int, str] = {}
    for service in services:
        for replica in allocation.replicas(service):
            for cpu in replica.affinity:
                ccx = machine.cpu(cpu).ccx.index
                owner = seen.setdefault(ccx, service)
                assert owner == service  # no CCX shared across services
    assert len(seen) == len(machine.ccxs)
