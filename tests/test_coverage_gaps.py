"""Targeted tests for paths not covered elsewhere."""

import pytest

from repro._errors import AnalysisError, SimulationError
from repro._units import ms
from repro.cpu import CpuBurst, CpuScheduler, FlatFrequencyModel, SmtModel, TaskGroup
from repro.metrics.hwcounters import CounterBank, CounterTotals
from repro.sim import AllOf, AnyOf, Interrupt, Resource, Simulator
from repro.topology import CpuSet, dual_socket_rome, machine_from_preset


# ---------------------------------------------------------------------------
# Topology: the big machines
# ---------------------------------------------------------------------------

def test_dual_socket_numbering_first_threads_cover_both_sockets():
    machine = dual_socket_rome()
    first = machine.first_threads()
    assert len(first) == 128  # 2 × 64 physical cores
    sockets = {machine.cpu(i).socket.index for i in first}
    assert sockets == {0, 1}
    # Siblings occupy ids 128..255.
    assert machine.sibling(0).index == 128
    assert machine.sibling(64).index == 192


def test_nps4_nodes_have_equal_cpu_counts():
    machine = machine_from_preset("rome-1s-nps4")
    sizes = [len(machine.cpus_in_node(n)) for n in range(4)]
    assert sizes == [32, 32, 32, 32]


def test_medium_machine_shape():
    machine = machine_from_preset("medium")
    assert machine.n_logical_cpus == 64
    assert len(machine.ccxs) == 8


# ---------------------------------------------------------------------------
# Simulation kernel corners
# ---------------------------------------------------------------------------

def test_condition_of_conditions():
    sim = Simulator()
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(2.0, value="b")
    c = sim.timeout(9.0, value="c")
    outer = AllOf(sim, [AnyOf(sim, [a, c]), b])
    done_at = []

    def proc():
        yield outer
        done_at.append(sim.now)

    sim.process(proc())
    sim.run(until=3.0)
    assert done_at == [2.0]


def test_interrupt_while_waiting_on_resource():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.acquire()  # hold it forever
    interrupted = []

    def waiter():
        try:
            yield resource.acquire()
        except Interrupt:
            interrupted.append(sim.now)

    process = sim.process(waiter())
    sim.call_in(1.0, lambda: process.interrupt())
    sim.run()
    assert interrupted == [1.0]


def test_process_cannot_interrupt_itself():
    sim = Simulator()

    def selfish():
        yield sim.timeout(1.0)

    process = sim.process(selfish())
    sim.run(until=0.5)
    # Force the illegal state the guard protects against.
    process._waiting_on = process
    with pytest.raises(SimulationError):
        process.interrupt()
    process._waiting_on = None
    sim.run()


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------

def test_counter_totals_guards():
    totals = CounterTotals()
    with pytest.raises(AnalysisError):
        __ = totals.ipc
    with pytest.raises(AnalysisError):
        __ = totals.l1i_mpki
    with pytest.raises(AnalysisError):
        __ = totals.frontend_bound_fraction
    with pytest.raises(AnalysisError):
        __ = totals.memory_bound_fraction


def test_counter_bank_unknown_name():
    with pytest.raises(AnalysisError):
        CounterBank().totals("ghost")


def test_counter_bank_ignores_profileless_groups():
    from repro.memory import MemorySystemModel
    from repro.topology import tiny_machine
    machine = tiny_machine()
    bank = CounterBank()
    model = MemorySystemModel(machine, counter_sink=bank)
    group = TaskGroup("bare", machine.all_cpus())  # no profile

    class FakeBurst:
        def __init__(self):
            self.group = group
            self.demand = ms(1.0)

    model.on_burst_complete(FakeBurst(), machine.cpu(0), ms(1.0))
    assert bank.names == []


# ---------------------------------------------------------------------------
# Scheduler: stealing actually happens
# ---------------------------------------------------------------------------

def test_steal_counter_increments():
    from repro.topology import tiny_machine
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine, smt_model=SmtModel(2.0),
                             frequency_model=FlatFrequencyModel())
    # Saturate cpu 0 with a pinned long burst, then queue wide bursts on
    # it; when other cpus finish their own short work they must steal.
    pinned = TaskGroup("pinned", CpuSet.single(0))
    wide = TaskGroup("wide", CpuSet([0, 1]))
    scheduler.submit(CpuBurst(ms(10.0), pinned, sim.event()))
    # Fill cpu 1 briefly so the wide burst must initially queue on cpu 0.
    blocker = TaskGroup("blocker", CpuSet.single(1))
    scheduler.submit(CpuBurst(ms(1.0), blocker, sim.event()))
    scheduler.submit(CpuBurst(ms(1.0), wide, sim.event()))
    sim.run()
    assert scheduler.bursts_stolen >= 1


# ---------------------------------------------------------------------------
# Latency-by-endpoint reporting
# ---------------------------------------------------------------------------

def test_run_result_latency_by_endpoint():
    from repro.services import Deployment
    from repro.teastore import build_teastore
    from repro.teastore.config import TeaStoreConfig
    from repro.topology import small_numa_machine
    from repro.workload import ClosedLoopWorkload, run_experiment

    deployment = Deployment(small_numa_machine(), seed=1)
    config = TeaStoreConfig(
        replicas={"webui": 2, "auth": 1, "persistence": 1, "image": 1,
                  "recommender": 1, "db": 1},
        workers={"webui": 32, "auth": 8, "persistence": 16, "image": 8,
                 "recommender": 8, "db": 16})
    store = build_teastore(deployment, config)
    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=24, think_time=0.03)
    result = run_experiment(deployment, workload, warmup=0.8, duration=2.0)
    assert "category" in result.latency_by_endpoint
    for mean, p99 in result.latency_by_endpoint.values():
        assert 0 < mean <= p99
    # Category pages (fan-out + previews) cost more than logout.
    assert (result.latency_by_endpoint["category"][0]
            > result.latency_by_endpoint["logout"][0])