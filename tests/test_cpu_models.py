"""Unit tests for SMT and frequency models and burst/task-group basics."""

import pytest

from repro._errors import SchedulingError
from repro.cpu import CpuBurst, FlatFrequencyModel, FrequencyModel, SmtModel, TaskGroup
from repro.sim import Simulator
from repro.topology import CpuSet


def test_smt_alone_is_full_speed():
    assert SmtModel(1.3).factor(sibling_busy=False) == 1.0


def test_smt_shared_core_each_thread_slows():
    model = SmtModel(1.3)
    assert model.factor(sibling_busy=True) == pytest.approx(0.65)


def test_smt_yield_two_means_no_interference():
    assert SmtModel(2.0).factor(sibling_busy=True) == 1.0


def test_smt_yield_validation():
    with pytest.raises(SchedulingError):
        SmtModel(0.9)
    with pytest.raises(SchedulingError):
        SmtModel(2.5)


def test_frequency_full_boost_at_low_occupancy():
    model = FrequencyModel(base_ghz=2.0, boost_ghz=3.0,
                           full_boost_fraction=0.25)
    assert model.factor(1, 100) == pytest.approx(1.5)
    assert model.factor(25, 100) == pytest.approx(1.5)


def test_frequency_base_clock_at_full_occupancy():
    model = FrequencyModel(base_ghz=2.0, boost_ghz=3.0)
    assert model.factor(100, 100) == pytest.approx(1.0)


def test_frequency_linear_in_between():
    model = FrequencyModel(base_ghz=2.0, boost_ghz=3.0,
                           full_boost_fraction=0.25)
    # Halfway between 25% and 100% occupancy → halfway between 1.5 and 1.0.
    assert model.factor(625, 1000) == pytest.approx(1.25)


def test_frequency_monotonically_nonincreasing():
    model = FrequencyModel(base_ghz=2.25, boost_ghz=3.4)
    factors = [model.factor(n, 64) for n in range(65)]
    assert all(a >= b for a, b in zip(factors, factors[1:]))
    assert min(factors) == pytest.approx(1.0)


def test_frequency_validation():
    with pytest.raises(SchedulingError):
        FrequencyModel(base_ghz=0.0, boost_ghz=1.0)
    with pytest.raises(SchedulingError):
        FrequencyModel(base_ghz=2.0, boost_ghz=1.0)
    with pytest.raises(SchedulingError):
        FrequencyModel(base_ghz=1.0, boost_ghz=2.0, full_boost_fraction=0.0)
    model = FrequencyModel(base_ghz=1.0, boost_ghz=2.0)
    with pytest.raises(SchedulingError):
        model.factor(1, 0)


def test_flat_frequency_is_always_one():
    model = FlatFrequencyModel()
    assert model.factor(0, 64) == 1.0
    assert model.factor(64, 64) == 1.0


def test_task_group_requires_affinity():
    with pytest.raises(SchedulingError):
        TaskGroup("empty", CpuSet())


def test_task_group_ids_unique():
    a = TaskGroup("a", CpuSet([0]))
    b = TaskGroup("b", CpuSet([0]))
    assert a.group_id != b.group_id


def test_burst_rejects_negative_demand():
    sim = Simulator()
    group = TaskGroup("g", CpuSet([0]))
    with pytest.raises(SchedulingError):
        CpuBurst(-1.0, group, sim.event())


def test_burst_queueing_delay_requires_dispatch():
    sim = Simulator()
    group = TaskGroup("g", CpuSet([0]))
    burst = CpuBurst(1.0, group, sim.event())
    with pytest.raises(SchedulingError):
        __ = burst.queueing_delay
