"""Cohort compression: exactness at weight 1, planning invariants, and
recoverability of individual members by seed."""

import pytest

from repro._errors import WorkloadError
from repro.experiments import ExperimentSettings
from repro.services.deployment import Deployment
from repro.sim import kernel
from repro.teastore.profiles import browse_profile
from repro.teastore.store import build_teastore
from repro.workload.closed import ClosedLoopWorkload
from repro.workload.runner import run_experiment
from repro.workload.cohorts import (
    Cohort,
    CohortWorkload,
    closed_workload,
    expand_member,
    plan_cohorts,
)

from ._kernels import backend_params


def tiny():
    return ExperimentSettings.fast(preset="tiny", users=24,
                                   warmup=0.1, duration=0.3)


def _run(settings, workload_cls, **workload_kwargs):
    deployment = Deployment(settings.machine(), seed=settings.seed,
                            memory_config=settings.memory_config)
    store = build_teastore(deployment, settings.store_config())
    workload = workload_cls(
        deployment, store.browse_session_factory(),
        n_users=settings.users, think_time=settings.think_time,
        **workload_kwargs)
    result = run_experiment(deployment, workload,
                            warmup=settings.warmup,
                            duration=settings.duration)
    return result, workload


class TestPlanning:
    def test_even_partition(self):
        cohorts = plan_cohorts(12, 4)
        assert [c.rep for c in cohorts] == [0, 4, 8]
        assert all(c.weight == 4 for c in cohorts)
        assert [uid for c in cohorts for uid in c.members] == list(range(12))

    def test_trailing_partial_cohort(self):
        cohorts = plan_cohorts(10, 4)
        assert [(c.rep, c.weight) for c in cohorts] == [(0, 4), (4, 4), (8, 2)]

    def test_factor_one_is_identity_layout(self):
        cohorts = plan_cohorts(5, 1)
        assert [(c.rep, c.weight) for c in cohorts] == [
            (0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]

    def test_base_offsets_global_ids(self):
        cohorts = plan_cohorts(6, 4, base=100)
        assert [(c.rep, c.weight) for c in cohorts] == [(100, 4), (104, 2)]
        assert list(cohorts[1].members) == [104, 105]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            plan_cohorts(0, 1)
        with pytest.raises(WorkloadError):
            plan_cohorts(4, 0)
        with pytest.raises(WorkloadError):
            Cohort(rep=-1, weight=1)
        with pytest.raises(WorkloadError):
            Cohort(rep=0, weight=0)

    def test_explicit_cohorts_must_cover_population(self):
        settings = tiny()
        deployment = Deployment(settings.machine(), seed=1)
        store = build_teastore(deployment, settings.store_config())
        with pytest.raises(WorkloadError):
            CohortWorkload(deployment, store.browse_session_factory(),
                           n_users=10, cohorts=[Cohort(0, 4)])


class TestWeightOneExactness:
    """The golden contract's load path: weight-1 cohorts must be
    byte-identical to per-user closed-loop generation on both kernels."""

    @pytest.mark.parametrize("backend", backend_params())
    def test_factor_one_matches_closed_loop(self, backend):
        settings = tiny()
        with kernel.use_backend(backend):
            baseline, __ = _run(settings, ClosedLoopWorkload)
            compressed, workload = _run(settings, CohortWorkload,
                                        cohort_factor=1)
        assert workload.n_cohorts == settings.users
        assert compressed == baseline

    def test_funnel_returns_cohort_workload(self):
        settings = tiny()
        deployment = Deployment(settings.machine(), seed=1)
        store = build_teastore(deployment, settings.store_config())
        workload = closed_workload(deployment,
                                   store.browse_session_factory(),
                                   n_users=8,
                                   think_time=settings.think_time)
        assert isinstance(workload, CohortWorkload)
        assert workload.n_cohorts == 8


class TestCompression:
    def test_compressed_run_preserves_aggregate_rate(self):
        settings = tiny()
        baseline, __ = _run(settings, CohortWorkload, cohort_factor=1)
        compressed, workload = _run(settings, CohortWorkload,
                                    cohort_factor=6)
        assert workload.n_cohorts == 4
        assert compressed.completed > 0
        # Think-dominated regime: the aggregate offered rate survives
        # compression (loose bound — queueing differs by design).
        assert (0.5 * baseline.throughput < compressed.throughput
                < 1.5 * baseline.throughput)

    def test_compressed_state_shrinks(self):
        settings = tiny()
        __, workload = _run(settings, CohortWorkload, cohort_factor=8)
        assert workload.n_users == settings.users
        assert workload.n_cohorts == 3


class TestExpansion:
    """Any member's session walk is recoverable from (seed, user_id)."""

    def test_expand_member_matches_live_run(self):
        settings = tiny()
        deployment = Deployment(settings.machine(), seed=settings.seed,
                                memory_config=settings.memory_config)
        store = build_teastore(deployment, settings.store_config())
        factory = store.browse_session_factory()
        recorded: dict[int, list] = {}

        def recording_factory(user_id):
            def tee():
                for step in factory(user_id):
                    recorded.setdefault(user_id, []).append(step)
                    yield step
            return tee()

        workload = CohortWorkload(deployment, recording_factory,
                                  n_users=settings.users,
                                  think_time=settings.think_time,
                                  cohort_factor=1)
        run_experiment(deployment, workload, warmup=settings.warmup,
                       duration=settings.duration)
        live = {uid: steps for uid, steps in recorded.items() if steps}
        assert live  # the run consumed sessions
        for user_id, steps in sorted(live.items())[:5]:
            replay = expand_member(browse_profile(), settings.seed,
                                   user_id, len(steps))
            assert replay == steps

    def test_expansion_is_deterministic_and_independent(self):
        first = expand_member(browse_profile(), seed=7, user_id=3,
                              n_steps=20)
        again = expand_member(browse_profile(), seed=7, user_id=3,
                              n_steps=20)
        other = expand_member(browse_profile(), seed=7, user_id=4,
                              n_steps=20)
        assert first == again
        assert first != other
        assert len(first) == 20

    def test_expansion_rejects_negative_steps(self):
        with pytest.raises(WorkloadError):
            expand_member(browse_profile(), seed=1, user_id=0, n_steps=-1)
