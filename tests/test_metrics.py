"""Unit tests for latency, throughput, utilization, and stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import AnalysisError
from repro._units import ms
from repro.cpu import CpuBurst, CpuScheduler, FlatFrequencyModel, SmtModel, TaskGroup
from repro.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    UtilizationProbe,
    confidence_interval,
    geometric_mean,
    harmonic_mean,
)
from repro.metrics.stats import speedup_summary
from repro.sim import Simulator
from repro.topology import tiny_machine


# ---------------------------------------------------------------------------
# LatencyRecorder
# ---------------------------------------------------------------------------

def test_latency_basic_stats():
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0, 4.0]:
        recorder.record(value)
    assert recorder.count == 4
    assert recorder.mean() == pytest.approx(2.5)
    assert recorder.p50() == pytest.approx(2.5)
    assert recorder.max() == 4.0


def test_latency_percentile_bounds():
    recorder = LatencyRecorder()
    recorder.record(1.0)
    with pytest.raises(AnalysisError):
        recorder.percentile(101)


def test_latency_tags():
    recorder = LatencyRecorder()
    recorder.record(1.0, tag="home")
    recorder.record(3.0, tag="login")
    assert recorder.tags == ["home", "login"]
    assert recorder.mean("home") == 1.0
    assert recorder.mean() == 2.0


def test_latency_empty_raises():
    with pytest.raises(AnalysisError):
        LatencyRecorder().mean()
    recorder = LatencyRecorder()
    recorder.record(1.0)
    with pytest.raises(AnalysisError):
        recorder.mean("missing")


def test_latency_disabled_drops_samples():
    recorder = LatencyRecorder()
    recorder.enabled = False
    recorder.record(1.0)
    assert recorder.count == 0


def test_latency_negative_rejected():
    with pytest.raises(AnalysisError):
        LatencyRecorder().record(-1.0)


def test_latency_reset():
    recorder = LatencyRecorder()
    recorder.record(1.0, tag="t")
    recorder.reset()
    assert recorder.count == 0
    assert recorder.tags == []


def test_latency_derived_arrays_cached_between_queries():
    # Satellite regression test: consecutive percentile queries against a
    # quiescent recorder must reuse the same derived array, not re-slice
    # the columns per call.
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0]:
        recorder.record(value, tag="home")
        recorder.record(value * 2, tag="login")
    first = recorder._array("home")
    recorder.percentile(50, "home")
    assert recorder._array("home") is first
    assert recorder._array(None) is recorder._array(None)
    tags = recorder.tags
    assert recorder.tags is tags
    # Recording invalidates every cached derived array.
    recorder.record(9.0, tag="home")
    assert recorder._array("home") is not first
    assert recorder.mean("home") == pytest.approx((1 + 2 + 3 + 9) / 4)


def test_latency_columnar_storage_matches_list_semantics():
    recorder = LatencyRecorder()
    values = [0.5, 0.25, 1.5, 0.75]
    tags = ["a", None, "a", "b"]
    for value, tag in zip(values, tags):
        recorder.record(value, tag=tag)
    assert recorder.count == 4
    assert recorder.tags == ["a", "b"]
    assert recorder.mean("a") == pytest.approx(1.0)
    assert recorder.max() == 1.5
    assert recorder.percentile(0, "a") == 0.5


# ---------------------------------------------------------------------------
# ThroughputMeter
# ---------------------------------------------------------------------------

def test_throughput_window_rate():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    meter.mark()  # before window: lifetime only
    sim.call_in(1.0, meter.start_window)
    for at in [1.5, 2.0, 2.5]:
        sim.call_in(at, meter.mark)
    sim.call_in(3.0, meter.stop_window)
    sim.call_in(3.5, meter.mark)  # after window
    sim.run()
    assert meter.lifetime_count == 5
    assert meter.window_count == 3
    assert meter.window_duration == pytest.approx(2.0)
    assert meter.rate() == pytest.approx(1.5)


def test_throughput_timeline_columnar():
    sim = Simulator()
    meter = ThroughputMeter(sim, record_timeline=True)
    for at in [0.5, 1.0, 1.5, 2.5]:
        sim.call_in(at, meter.mark)
    sim.run()
    assert meter.mark_times().tolist() == [0.5, 1.0, 1.5, 2.5]
    edges, rates = meter.rate_series(1.0)
    assert edges.tolist() == [0.5, 1.5, 2.5]
    assert rates.tolist() == [2.0, 1.0, 1.0]


def test_throughput_timeline_off_by_default():
    meter = ThroughputMeter(Simulator())
    meter.mark()
    with pytest.raises(AnalysisError):
        meter.mark_times()
    with pytest.raises(AnalysisError):
        ThroughputMeter(Simulator(), record_timeline=True).rate_series(0)


def test_throughput_window_misuse():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    with pytest.raises(AnalysisError):
        meter.stop_window()
    with pytest.raises(AnalysisError):
        meter.rate()
    meter.start_window()
    meter.stop_window()
    with pytest.raises(AnalysisError):
        meter.stop_window()
    with pytest.raises(AnalysisError):
        meter.rate()  # zero-duration window


# ---------------------------------------------------------------------------
# UtilizationProbe
# ---------------------------------------------------------------------------

def test_utilization_probe_measures_busy_fraction():
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine, smt_model=SmtModel(2.0),
                             frequency_model=FlatFrequencyModel())
    group = TaskGroup("svc", machine.all_cpus())
    probe = UtilizationProbe(scheduler, [group])
    probe.start()
    # Keep cpu busy 50% of a 2-second window: one 1s burst.
    burst = CpuBurst(1.0, group, sim.event())
    scheduler.submit(burst)
    sim.run(until=2.0)
    probe.stop()
    assert probe.duration == pytest.approx(2.0)
    assert probe.cpu_utilization(burst.cpu_index) == pytest.approx(0.5)
    assert probe.machine_utilization() == pytest.approx(0.5 / 8)
    assert probe.group_cpu_time(group) == pytest.approx(1.0)
    assert probe.group_utilization()["svc"] == pytest.approx(0.5)


def test_utilization_group_share_aggregates_by_name():
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine, smt_model=SmtModel(2.0),
                             frequency_model=FlatFrequencyModel())
    a1 = TaskGroup("a", machine.all_cpus())
    a2 = TaskGroup("a", machine.all_cpus())
    b = TaskGroup("b", machine.all_cpus())
    probe = UtilizationProbe(scheduler, [a1, a2, b])
    probe.start()
    for group, demand in [(a1, 1.0), (a2, 1.0), (b, 2.0)]:
        scheduler.submit(CpuBurst(demand, group, sim.event()))
    sim.run()
    probe.stop()
    share = probe.group_share()
    assert share["a"] == pytest.approx(0.5)
    assert share["b"] == pytest.approx(0.5)


def test_utilization_probe_misuse():
    sim = Simulator()
    machine = tiny_machine()
    scheduler = CpuScheduler(sim, machine)
    probe = UtilizationProbe(scheduler)
    with pytest.raises(AnalysisError):
        probe.stop()
    probe.start()
    group = TaskGroup("late", machine.all_cpus())
    with pytest.raises(AnalysisError):
        probe.track(group)


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

def test_harmonic_mean_known_value():
    assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)


def test_harmonic_leq_geometric():
    values = [1.2, 0.8, 2.0, 1.5]
    assert harmonic_mean(values) <= geometric_mean(values)


def test_means_validate_input():
    for fn in (harmonic_mean, geometric_mean):
        with pytest.raises(AnalysisError):
            fn([])
        with pytest.raises(AnalysisError):
            fn([1.0, -2.0])


def test_confidence_interval_contains_mean():
    summary = confidence_interval([10.0, 12.0, 11.0, 13.0, 9.0])
    assert summary.ci_low < summary.mean < summary.ci_high
    assert summary.n == 5
    assert "±" in str(summary)


def test_confidence_interval_single_sample():
    summary = confidence_interval([5.0])
    assert summary.mean == summary.ci_low == summary.ci_high == 5.0


def test_confidence_interval_constant_samples():
    summary = confidence_interval([2.0, 2.0, 2.0])
    assert summary.ci_half_width == 0.0


def test_confidence_interval_validation():
    with pytest.raises(AnalysisError):
        confidence_interval([])
    with pytest.raises(AnalysisError):
        confidence_interval([1.0], confidence=1.5)


def test_speedup_summary_paired():
    assert speedup_summary([1.0, 1.0], [1.2, 1.2]) == pytest.approx(1.2)
    with pytest.raises(AnalysisError):
        speedup_summary([1.0], [1.0, 2.0])


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.01, max_value=100.0),
                       min_size=1, max_size=20))
def test_property_mean_inequality_chain(values):
    import numpy as np
    hmean = harmonic_mean(values)
    gmean = geometric_mean(values)
    amean = float(np.mean(values))
    assert hmean <= gmean * (1 + 1e-9)
    assert gmean <= amean * (1 + 1e-9)


def test_latency_subnanosecond_negative_artifact_clamps_to_zero():
    # Float subtraction of near-equal clocks can yield -1e-18-scale
    # noise; that must not kill a sweep at its last reduction.
    recorder = LatencyRecorder()
    recorder.record(-1e-18)
    recorder.record(-9.99e-10)
    assert recorder.count == 2
    assert recorder.mean() == 0.0
    assert recorder.max() == 0.0


def test_latency_genuinely_negative_still_rejected():
    with pytest.raises(AnalysisError):
        LatencyRecorder().record(-1e-9)
    with pytest.raises(AnalysisError):
        LatencyRecorder().record(-0.5)


# ---------------------------------------------------------------------------
# Columnar buffers
# ---------------------------------------------------------------------------

def test_column_amortized_doubling_and_views():
    import numpy as np

    from repro.metrics.columns import Column
    column = Column(np.float64, capacity=2)
    for i in range(5):
        column.append(float(i))
    assert len(column) == 5
    assert column.as_array().tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
    # The view is zero-copy: it aliases the backing store.
    view = column.as_array()
    assert view.base is column._data
    column.extend([5.0, 6.0])
    assert column.as_array().tolist()[-2:] == [5.0, 6.0]
    assert column.nbytes >= 7 * 8
    column.clear()
    assert len(column) == 0


def test_string_interner_roundtrip():
    from repro.metrics.columns import StringInterner
    interner = StringInterner()
    a = interner.encode("alpha")
    b = interner.encode("beta")
    assert interner.encode("alpha") == a != b
    assert interner.decode(a) == "alpha"
    assert interner.decode(StringInterner.NONE) == ""
    assert interner.code_if_known("gamma") is None
    assert len(interner) == 2
