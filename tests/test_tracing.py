"""Unit + integration tests for distributed tracing."""

import pytest

from repro._errors import AnalysisError
from repro._units import ms
from repro.cpu import FlatFrequencyModel, SmtModel
from repro.memory import WorkloadProfile
from repro.services import Deployment, ServiceSpec
from repro.tracing import TraceCollector
from repro.tracing.collector import _union_length


def add_span(collector, request_id, parent_id=None, service="svc",
             endpoint="op", created=0.0, enqueued=0.0, started=0.0,
             completed=1.0):
    return collector.add_span(request_id, parent_id, service, endpoint, 0,
                              created, enqueued, started, completed)


# ---------------------------------------------------------------------------
# _union_length
# ---------------------------------------------------------------------------

def test_union_length_empty():
    assert _union_length([]) == 0.0


def test_union_length_disjoint():
    assert _union_length([(0, 1), (2, 3)]) == pytest.approx(2.0)


def test_union_length_overlapping():
    assert _union_length([(0, 2), (1, 3)]) == pytest.approx(3.0)


def test_union_length_nested():
    assert _union_length([(0, 10), (2, 3), (4, 5)]) == pytest.approx(10.0)


def test_union_length_unsorted_input():
    assert _union_length([(5, 6), (0, 2), (1, 3)]) == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Span / collector mechanics
# ---------------------------------------------------------------------------

def test_span_derived_times():
    span = add_span(TraceCollector(), 1, created=1.0, enqueued=1.1,
                    started=1.4, completed=2.0)
    assert span.duration == pytest.approx(1.0)
    assert span.queue_time == pytest.approx(0.3)
    assert span.service_time == pytest.approx(0.6)


def test_collector_exclusive_time_subtracts_children_union():
    collector = TraceCollector()
    root = add_span(collector, 1, created=0.0, completed=10.0)
    # Two parallel children overlapping 2..5 and 3..7 → union 5.
    add_span(collector, 2, parent_id=1, created=2.0, completed=5.0)
    add_span(collector, 3, parent_id=1, created=3.0, completed=7.0)
    assert collector.exclusive_time(root) == pytest.approx(5.0)


def test_collector_exclusive_time_no_children():
    collector = TraceCollector()
    root = add_span(collector, 1, created=0.0, completed=4.0)
    assert collector.exclusive_time(root) == pytest.approx(4.0)


def test_add_span_builds_queryable_table():
    collector = TraceCollector()
    root = add_span(collector, 1, service="frontend", endpoint="page",
                    created=0.0, completed=4.0)
    child = add_span(collector, 2, parent_id=1, service="backend",
                     created=1.0, completed=2.0)
    assert len(collector) == 2
    assert collector.roots == [root]
    assert collector.children_of(root) == [child]
    assert child.parent_id == 1
    breakdown = collector.breakdown("page")
    assert breakdown["frontend"] == pytest.approx(3.0)
    assert breakdown["backend"] == pytest.approx(1.0)


def test_breakdown_requires_roots():
    with pytest.raises(AnalysisError):
        TraceCollector().breakdown()
    with pytest.raises(AnalysisError):
        TraceCollector().mean_root_latency()


# ---------------------------------------------------------------------------
# End-to-end tracing through a deployment
# ---------------------------------------------------------------------------

def traced_system():
    from repro.topology import tiny_machine
    deployment = Deployment(tiny_machine(), seed=0,
                            smt_model=SmtModel(2.0),
                            frequency_model=FlatFrequencyModel())
    deployment.rpc.hop_latency = 0.0
    profile = WorkloadProfile("x", 1024, 1024, 0.1, 0.1)

    backend = ServiceSpec("backend", profile, workers=4)

    @backend.endpoint("q")
    def q(ctx):
        yield ctx.submit_demand(ms(2.0))
        return "rows"

    frontend = ServiceSpec("frontend", profile, workers=4)

    @frontend.endpoint("page")
    def page(ctx):
        yield ctx.submit_demand(ms(1.0))
        first = ctx.call("backend", "q")
        second = ctx.call("backend", "q")
        yield ctx.gather(first, second)
        yield ctx.submit_demand(ms(0.5))
        return "html"

    deployment.add_instance(backend)
    deployment.add_instance(frontend)
    deployment.tracer = TraceCollector()
    return deployment


def test_end_to_end_trace_tree():
    deployment = traced_system()
    done = deployment.dispatch("frontend", "page")
    deployment.run()
    assert done.ok
    tracer = deployment.tracer
    assert len(tracer) == 3  # 1 frontend + 2 backend spans
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.service == "frontend"
    children = tracer.children_of(root)
    assert len(children) == 2
    assert all(c.service == "backend" for c in children)
    assert len(tracer.trace_of(root)) == 3


def test_end_to_end_exclusive_time_decomposition():
    deployment = traced_system()
    deployment.dispatch("frontend", "page")
    deployment.run()
    tracer = deployment.tracer
    breakdown = tracer.breakdown("page")
    # Frontend own CPU = 1.0 + 0.5 ms; backend calls run in parallel on
    # distinct cores → backend union window ≈ 2ms.
    assert breakdown["frontend"] == pytest.approx(ms(1.5), rel=0.05)
    assert breakdown["backend"] == pytest.approx(ms(2.0), rel=0.05)
    total = sum(breakdown.values())
    assert total == pytest.approx(tracer.mean_root_latency(), rel=0.05)


def test_tracer_reset():
    deployment = traced_system()
    deployment.dispatch("frontend", "page")
    deployment.run()
    deployment.tracer.reset()
    assert len(deployment.tracer) == 0
    assert deployment.tracer.roots == []


def test_breakdown_filters_by_endpoint():
    deployment = traced_system()
    deployment.dispatch("frontend", "page")
    deployment.run()
    with pytest.raises(AnalysisError):
        deployment.tracer.breakdown("missing-endpoint")


def test_chrome_trace_export():
    import json
    deployment = traced_system()
    deployment.dispatch("frontend", "page")
    deployment.dispatch("frontend", "page")
    deployment.run()
    events = deployment.tracer.to_chrome_trace()
    assert len(events) == 6  # 2 roots × 3 spans
    json.dumps(events)  # must be serializable
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] > 0
        assert "/" in event["name"]
    limited = deployment.tracer.to_chrome_trace(limit_roots=1)
    assert len(limited) == 3
    root_ids = {event["args"]["root_id"] for event in limited}
    assert len(root_ids) == 1


def test_tracing_off_by_default_costs_nothing():
    deployment = traced_system()
    deployment.tracer = None
    done = deployment.dispatch("frontend", "page")
    deployment.run()
    assert done.ok
