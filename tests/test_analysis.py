"""Unit + property tests for USL/Amdahl fits and scaling curves."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._errors import AnalysisError, PlacementError
from repro.analysis import fit_amdahl, fit_usl
from repro.placement import ScalingCurve, weights_from_utilization


def usl_curve(lambda_, sigma, kappa, counts):
    return [lambda_ * n / (1 + sigma * (n - 1) + kappa * n * (n - 1))
            for n in counts]


def test_usl_recovers_known_parameters():
    counts = [1, 2, 4, 8, 16, 32, 64]
    throughputs = usl_curve(100.0, 0.05, 0.001, counts)
    fit = fit_usl(counts, throughputs)
    assert fit.lambda_ == pytest.approx(100.0, rel=0.02)
    assert fit.sigma == pytest.approx(0.05, abs=0.01)
    assert fit.kappa == pytest.approx(0.001, abs=0.0005)
    assert fit.r_squared > 0.999


def test_usl_fit_with_noise_still_close():
    rng = np.random.default_rng(0)
    counts = [1, 2, 4, 8, 16, 32]
    clean = usl_curve(50.0, 0.1, 0.002, counts)
    noisy = [x * (1 + rng.normal(0, 0.02)) for x in clean]
    fit = fit_usl(counts, noisy)
    assert fit.r_squared > 0.98
    assert fit.sigma == pytest.approx(0.1, abs=0.05)


def test_usl_linear_scaling_has_tiny_contention():
    counts = [1, 2, 4, 8]
    fit = fit_usl(counts, [10.0 * n for n in counts])
    assert fit.sigma < 0.01
    assert fit.kappa < 1e-4
    assert fit.peak_concurrency() > 100 or math.isinf(fit.peak_concurrency())


def test_usl_peak_concurrency_with_coherency():
    fit = fit_usl([1, 2, 4, 8, 16, 32, 64],
                  usl_curve(10.0, 0.05, 0.01, [1, 2, 4, 8, 16, 32, 64]))
    peak = fit.peak_concurrency()
    assert peak == pytest.approx(math.sqrt(0.95 / 0.01), rel=0.2)


def test_usl_predict_validation():
    fit = fit_usl([1, 2, 4], [10, 19, 35])
    with pytest.raises(AnalysisError):
        fit.predict(0)
    assert "USL" in str(fit)


def test_usl_input_validation():
    with pytest.raises(AnalysisError):
        fit_usl([1, 2], [10, 20])  # too few points
    with pytest.raises(AnalysisError):
        fit_usl([1, 2, 3], [10, 20])  # length mismatch
    with pytest.raises(AnalysisError):
        fit_usl([1, 2, 2], [10, 20, 20])  # duplicates
    with pytest.raises(AnalysisError):
        fit_usl([1, 2, 4], [10, -20, 30])  # non-positive


def test_amdahl_recovers_parallel_fraction():
    counts = [1, 2, 4, 8, 16]
    p = 0.9
    speedups = [1.0 / ((1 - p) + p / n) for n in counts]
    fit = fit_amdahl(counts, speedups)
    assert fit.parallel_fraction == pytest.approx(0.9, abs=0.01)
    assert fit.r_squared > 0.999
    assert fit.predict_speedup(16) == pytest.approx(speedups[-1], rel=0.01)
    assert "Amdahl" in str(fit)


def test_amdahl_predict_validation():
    fit = fit_amdahl([1, 2, 4], [1.0, 1.8, 3.0])
    with pytest.raises(AnalysisError):
        fit.predict_speedup(-1)


@settings(max_examples=30, deadline=None)
@given(lambda_=st.floats(min_value=1.0, max_value=1000.0),
       sigma=st.floats(min_value=0.0, max_value=0.3),
       kappa=st.floats(min_value=0.0, max_value=0.01))
def test_property_usl_fit_reproduces_curve(lambda_, sigma, kappa):
    counts = [1, 2, 4, 8, 16, 32]
    throughputs = usl_curve(lambda_, sigma, kappa, counts)
    fit = fit_usl(counts, throughputs)
    for n, expected in zip(counts, throughputs):
        assert fit.predict(n) == pytest.approx(expected, rel=0.05)


# ---------------------------------------------------------------------------
# ScalingCurve / weights
# ---------------------------------------------------------------------------

def test_scaling_curve_speedups_and_efficiency():
    curve = ScalingCurve("webui", (1, 2, 4), (100.0, 190.0, 340.0))
    assert curve.speedups() == pytest.approx((1.0, 1.9, 3.4))
    assert curve.efficiency() == pytest.approx((1.0, 0.95, 0.85))
    assert "webui" in str(curve)


def test_scaling_curve_saturation_point():
    curve = ScalingCurve("db", (1, 2, 4, 8), (100.0, 120.0, 122.0, 123.0))
    assert curve.saturation_point(threshold=0.05) == 4
    linear = ScalingCurve("webui", (1, 2, 4), (100.0, 200.0, 400.0))
    assert linear.saturation_point() == 4


def test_scaling_curve_validation():
    with pytest.raises(PlacementError):
        ScalingCurve("x", (1, 2), (10.0,))
    with pytest.raises(PlacementError):
        ScalingCurve("x", (), ())
    with pytest.raises(PlacementError):
        ScalingCurve("x", (2, 1), (10.0, 20.0))
    with pytest.raises(PlacementError):
        ScalingCurve("x", (1, 2), (10.0, -1.0))


def test_weights_from_utilization_normalizes():
    weights = weights_from_utilization({"a": 3.0, "b": 1.0})
    assert weights["a"] == pytest.approx(0.75)
    assert weights["b"] == pytest.approx(0.25)


def test_weights_floor_protects_idle_services():
    weights = weights_from_utilization({"a": 100.0, "b": 0.001})
    assert weights["b"] == pytest.approx(0.02)


def test_weights_validation():
    with pytest.raises(PlacementError):
        weights_from_utilization({})
    with pytest.raises(PlacementError):
        weights_from_utilization({"a": -1.0})
    with pytest.raises(PlacementError):
        weights_from_utilization({"a": 0.0})
