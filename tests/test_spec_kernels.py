"""Tests for the SPEC-class comparison kernels and the counter pipeline."""

import pytest

from repro.metrics import CounterBank
from repro.spec import KERNEL_NAMES, batch_kernel_profiles, run_batch_kernels
from repro.teastore import service_profiles
from repro.topology import small_numa_machine


def test_kernel_profiles_cover_names():
    profiles = batch_kernel_profiles()
    assert set(profiles) == set(KERNEL_NAMES)


def test_kernels_are_the_anti_microservice():
    """The characterization contrast: small code, high IPC, low
    front-end sensitivity — the opposite of the TeaStore services."""
    kernels = batch_kernel_profiles()
    services = service_profiles()
    max_kernel_code = max(p.code_bytes for p in kernels.values())
    min_service_code = min(p.code_bytes for p in services.values())
    assert max_kernel_code < min_service_code
    assert min(p.base_ipc for p in kernels.values()) > max(
        p.base_ipc for p in services.values())
    assert max(p.frontend_intensity for p in kernels.values()) < min(
        p.frontend_intensity for p in services.values())
    assert max(p.l1i_mpki for p in kernels.values()) < min(
        p.l1i_mpki for p in services.values())


def test_run_batch_kernels_records_counters():
    bank = CounterBank()
    run_batch_kernels(small_numa_machine(), bank, bursts_per_kernel=20)
    assert set(bank.names) == set(KERNEL_NAMES)
    for name in KERNEL_NAMES:
        totals = bank.totals(name)
        assert totals.bursts == 20
        assert totals.instructions > 0
        assert totals.ipc > 0


def test_kernel_counters_show_high_ipc_low_l1i():
    bank = CounterBank()
    run_batch_kernels(small_numa_machine(), bank, bursts_per_kernel=30)
    spec_int = bank.totals("spec-int-like")
    assert spec_int.ipc > 1.5
    assert spec_int.l1i_mpki < 3.0
    stream = bank.totals("stream-like")
    # Streaming kernel: large working set in one CCX → memory-bound.
    assert stream.l3_mpki > spec_int.l3_mpki
    assert stream.memory_bound_fraction > spec_int.memory_bound_fraction


def test_kernels_deterministic_across_runs():
    def once():
        bank = CounterBank()
        run_batch_kernels(small_numa_machine(), bank,
                          bursts_per_kernel=10, seed=4)
        return bank.totals("spec-fp-like").cycles

    assert once() == once()


def test_counter_table_shape():
    bank = CounterBank()
    run_batch_kernels(small_numa_machine(), bank, bursts_per_kernel=5)
    table = bank.table()
    assert len(table) == len(KERNEL_NAMES)
    for row in table:
        assert {"workload", "ipc", "l1i_mpki", "l3_mpki",
                "frontend_bound", "memory_bound"} <= set(row)
