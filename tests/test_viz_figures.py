"""Tests for the SVG chart writers and the experiment-figure mapping."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro._errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.figures import figure_for, write_figures
from repro.viz import bar_chart, grouped_bar_chart, line_chart


def parse_svg(svg: str) -> ElementTree.Element:
    return ElementTree.fromstring(svg)


# ---------------------------------------------------------------------------
# viz primitives
# ---------------------------------------------------------------------------

def test_line_chart_is_valid_xml_with_series():
    svg = line_chart({"a": [(1, 10.0), (2, 20.0)],
                      "b": [(1, 5.0), (2, 2.0)]},
                     title="T", x_label="x", y_label="y")
    root = parse_svg(svg)
    assert root.tag.endswith("svg")
    polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
    assert len(polylines) == 2
    circles = [e for e in root.iter() if e.tag.endswith("circle")]
    assert len(circles) == 4
    assert "T" in svg and "x" in svg and "y" in svg


def test_line_chart_escapes_labels():
    svg = line_chart({"a<b>": [(0, 1.0)]}, title="t & u")
    assert "a&lt;b&gt;" in svg
    assert "t &amp; u" in svg
    parse_svg(svg)


def test_line_chart_validation():
    with pytest.raises(ConfigurationError):
        line_chart({}, title="empty")
    with pytest.raises(ConfigurationError):
        line_chart({"a": []}, title="empty")


def test_bar_chart_one_rect_per_value():
    svg = bar_chart(["a", "b", "c"], [1.0, 2.0, 3.0], title="bars")
    root = parse_svg(svg)
    rects = [e for e in root.iter() if e.tag.endswith("rect")]
    # background + 3 bars
    assert len(rects) == 4


def test_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        bar_chart([], [], title="x")
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], [1.0, 2.0], title="x")


def test_grouped_bar_chart_shape():
    svg = grouped_bar_chart(["g1", "g2"],
                            {"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
                            title="grouped")
    root = parse_svg(svg)
    rects = [e for e in root.iter() if e.tag.endswith("rect")]
    # background + 4 bars + 2 legend swatches
    assert len(rects) == 7


def test_grouped_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        grouped_bar_chart([], {}, title="x")
    with pytest.raises(ConfigurationError):
        grouped_bar_chart(["g"], {"s": [1.0, 2.0]}, title="x")


# ---------------------------------------------------------------------------
# experiment mapping
# ---------------------------------------------------------------------------

def e2_result():
    return ExperimentResult("E2", "load", [
        {"users": 10, "throughput_rps": 100.0, "latency_mean_ms": 5.0,
         "latency_p95_ms": 8.0, "latency_p99_ms": 9.0,
         "machine_util": 0.2},
        {"users": 20, "throughput_rps": 180.0, "latency_mean_ms": 6.0,
         "latency_p95_ms": 9.0, "latency_p99_ms": 11.0,
         "machine_util": 0.4},
    ])


def test_figure_for_known_experiment():
    svg = figure_for(e2_result())
    assert svg is not None
    parse_svg(svg)


def test_figure_for_unknown_experiment_is_none():
    result = ExperimentResult("E1", "platform", [{"attribute": "x",
                                                  "value": 1}])
    assert figure_for(result) is None


def test_write_figures(tmp_path):
    results = [e2_result(),
               ExperimentResult("E1", "platform",
                                [{"attribute": "x", "value": 1}])]
    written = write_figures(results, tmp_path)
    assert [p.name for p in written] == ["e2.svg"]
    assert (tmp_path / "e2.svg").read_text().startswith("<svg")


def test_property_charts_always_valid_xml():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6),
                           min_size=1, max_size=10))
    def check(values):
        labels = [f"l{i}" for i in range(len(values))]
        parse_svg(bar_chart(labels, values, title="t"))
        points = [(float(i), v) for i, v in enumerate(values)]
        parse_svg(line_chart({"s": points}, title="t"))

    check()


def test_every_registered_builder_renders_from_fast_shapes():
    """Each builder must handle its experiment's real row schema."""
    from repro.experiments.figures import _BUILDERS
    samples = {
        "E2": e2_result(),
        "E3": ExperimentResult("E3", "t", [
            {"logical_cpus": 8, "throughput_rps": 10.0}]),
        "E4": ExperimentResult("E4", "t", [
            {"config": "off", "throughput_rps": 10.0}]),
        "E5": ExperimentResult("E5", "t", [
            {"service": "webui", "cpu_share_pct": 40.0}]),
        "E6": ExperimentResult("E6", "t", [
            {"service": "webui", "ccxs": 1, "throughput_rps": 10.0},
            {"service": "webui", "ccxs": 2, "throughput_rps": 18.0}]),
        "E7": ExperimentResult("E7", "t", [
            {"policy": "unpinned", "throughput_rps": 10.0}]),
        "E8": ExperimentResult("E8", "t", [
            {"config": "base", "throughput_rps": 10.0}]),
        "E9": ExperimentResult("E9", "t", [
            {"workload": "webui", "ipc": 0.5, "l1i_mpki": 40.0}]),
        "E10": ExperimentResult("E10", "t", [
            {"config": "local", "throughput_rps": 10.0}]),
        "E12": ExperimentResult("E12", "t", [
            {"config": "alone", "store_rps": 10.0}]),
        "A2": ExperimentResult("A2", "t", [
            {"logical_cpus": 16, "boost_gain_pct": 50.0}]),
        "A3": ExperimentResult("A3", "t", [
            {"smt_yield": 1.3, "throughput_rps": 10.0}]),
        "A4": ExperimentResult("A4", "t", [
            {"bandwidth_capacity": "unlimited", "throughput_rps": 10.0}]),
    }
    assert set(samples) == set(_BUILDERS)
    for experiment_id, sample in samples.items():
        svg = figure_for(sample)
        assert svg is not None, experiment_id
        parse_svg(svg)
