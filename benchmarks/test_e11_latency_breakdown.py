"""E11 benchmark: traced per-service latency decomposition."""

from conftest import run_once

from repro.experiments import e11_latency_breakdown


def test_e11_latency_breakdown(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: e11_latency_breakdown.run(settings))
    archive(result)

    def shares(endpoint):
        return {r["service"]: r["share_pct"] for r in result.rows
                if r["endpoint"] == endpoint}

    checkout = shares("checkout")
    product = shares("product")
    # Shape: the serialized DB write path dominates checkout latency far
    # beyond its CPU share, while product-page latency is render-led.
    assert checkout["db"] > 25.0
    assert checkout["db"] > product["db"]
    assert product["webui"] > 20.0
    for endpoint in ("product", "checkout"):
        assert abs(sum(shares(endpoint).values()) - 100.0) < 1e-6
