"""E14 benchmark: cross-application scale-up characterization."""

from conftest import run_once

from repro.experiments import e14_cross_app


def test_e14_cross_app(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: e14_cross_app.run(settings))
    archive(result)
    rows = {row["app"]: row for row in result.rows}
    # All three bundled applications are characterized side by side.
    assert set(rows) == {"teastore", "boutique", "socialnet"}
    assert rows["teastore"]["services"] == 6
    assert rows["boutique"]["services"] == 11
    assert rows["socialnet"]["services"] == 11
    for row in result.rows:
        # Every app saturates somewhere on the ladder and fits USL
        # coefficients in their physical ranges.
        assert row["peak_rps"] > 0
        assert row["knee_users"] > 0
        assert 0.0 <= row["usl_sigma"] <= 1.0
        assert row["usl_kappa"] >= 0.0
    # The comparative note is present when several apps ran.
    assert any(note.startswith("topology sensitivity")
               for note in result.notes)
