"""E7 benchmark: placement-policy comparison."""

from conftest import run_once

from repro.experiments import e7_placement


def test_e7_placement(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e7_placement.run(settings))
    archive(result)
    by_policy = {row["policy"]: row for row in result.rows}
    # Shape: node-granular pinning buys little on a one-node socket;
    # CCX-granular pinning is where the win is.
    assert abs(by_policy["node_spread"]["uplift_pct"]) < 8.0
    assert by_policy["ccx_aware"]["uplift_pct"] > 10.0
    assert (by_policy["ccx_aware"]["latency_mean_ms"]
            < by_policy["unpinned"]["latency_mean_ms"])
