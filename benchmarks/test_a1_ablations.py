"""A1/A2/A3 benchmarks: design-choice ablations."""

from conftest import run_once

from repro.experiments import ablations


def test_a1_code_sharing(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: ablations.run_code_sharing(settings))
    archive(result)
    by_config = {row["config"]: row["throughput_rps"]
                 for row in result.rows}
    # Sharing text pages between same-service replicas must not hurt and
    # should help on the code-pressured baseline.
    assert (by_config["code sharing on (real)"]
            >= by_config["code sharing off (ablated)"])


def test_a2_frequency_boost(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: ablations.run_frequency_ablation(settings))
    archive(result)
    gains = result.column("boost_gain_pct")
    # Boost pays most at partial occupancy and fades as the socket fills.
    assert gains[0] > 10.0
    assert gains[-1] < gains[0]


def test_a4_bandwidth(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: ablations.run_bandwidth_ablation(settings))
    archive(result)
    relatives = result.column("relative")
    # Tightening channels monotonically costs throughput.
    assert all(b <= a * 1.02 for a, b in zip(relatives, relatives[1:]))
    assert relatives[-1] < 0.97


def test_a3_smt_yield(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: ablations.run_smt_yield_ablation(settings))
    archive(result)
    relatives = result.column("relative")
    # Saturated throughput grows with the modelled SMT yield, sub-linearly.
    assert all(b >= a * 0.99 for a, b in zip(relatives, relatives[1:]))
    assert relatives[-1] < 1.45 / 1.0  # well below the raw yield ratio
