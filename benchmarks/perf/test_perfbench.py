"""Unit tests for the wall-clock perf harness (artifact + gate logic)."""

import json

import pytest

from repro._errors import ConfigurationError
from repro.orchestrator import perfbench


def _result(name, wall, repeats=None, points=1):
    return perfbench.SliceResult(
        name, wall, tuple(repeats or (wall,)), points)


class TestTrajectoryArtifact:

    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        entry1 = perfbench.trajectory_entry(
            [_result("e8", 2.0)], "smoke", label="first")
        perfbench.append_trajectory(path, entry1)
        entry2 = perfbench.trajectory_entry(
            [_result("e8", 1.0)], "smoke", label="second")
        payload = perfbench.append_trajectory(path, entry2)
        assert payload["artifact"] == "repro-perf-bench"
        labels = [e["label"] for e in payload["trajectory"]]
        assert labels == ["first", "second"]
        on_disk = json.loads(path.read_text())
        assert on_disk == payload

    def test_append_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"artifact": "something-else"}')
        with pytest.raises(ConfigurationError):
            perfbench.append_trajectory(
                path, perfbench.trajectory_entry([], "smoke"))

    def test_baseline_entry_picks_newest_matching_mode(self, tmp_path):
        path = tmp_path / "baseline.json"
        for label, mode in (("a", "smoke"), ("b", "full"), ("c", "smoke")):
            perfbench.append_trajectory(path, perfbench.trajectory_entry(
                [_result("e8", 1.0)], mode, label=label))
        assert perfbench.baseline_entry(path, "smoke")["label"] == "c"
        assert perfbench.baseline_entry(path, "full")["label"] == "b"
        with pytest.raises(ConfigurationError):
            perfbench.baseline_entry(path, "nightly")


class TestLabels:

    def test_default_label_is_short_sha_or_manual(self):
        label = perfbench.default_label()
        assert label == "manual" or (
            4 <= len(label) <= 16
            and all(c in "0123456789abcdef" for c in label))

    def test_entry_label_defaults_and_explicit_wins(self):
        defaulted = perfbench.trajectory_entry([_result("e8", 1.0)], "smoke")
        assert defaulted["label"] == perfbench.default_label()
        explicit = perfbench.trajectory_entry(
            [_result("e8", 1.0)], "smoke", label="mine")
        assert explicit["label"] == "mine"
        # An explicit empty label is preserved, not replaced.
        blank = perfbench.trajectory_entry(
            [_result("e8", 1.0)], "smoke", label="")
        assert blank["label"] == ""

    def test_default_label_survives_missing_git(self, monkeypatch):
        monkeypatch.setenv("PATH", "")
        assert perfbench.default_label() == "manual"


class TestProfileArtifact:

    def test_profile_slice_stats_shape(self):
        stats = perfbench.profile_slice_stats("smoke", "e13", top=5)
        assert stats["slice"] == "e13"
        assert stats["points"] >= 1
        assert stats["total_calls"] > 0
        assert stats["total_seconds"] > 0
        assert 1 <= len(stats["hotspots"]) <= 5
        hottest = stats["hotspots"][0]
        assert set(hottest) == {"function", "location", "ncalls",
                                "primitive_calls", "tottime", "cumtime"}
        # Sorted by cumulative time, descending.
        cumtimes = [row["cumtime"] for row in stats["hotspots"]]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_profile_artifact_headed_like_an_entry(self):
        payload = perfbench.profile_artifact(
            "smoke", slices=["e13"], top=3, label="probe")
        assert payload["artifact"] == "repro-perf-profile"
        assert payload["metric"] == "profile"
        assert payload["label"] == "probe"
        assert payload["top"] == 3
        assert [p["slice"] for p in payload["profiles"]] == ["e13"]

    def test_top_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            perfbench.profile_slice_stats("smoke", "e13", top=0)


class TestRegressionGate:

    BASELINE = {"slices": {"e8": {"wall_seconds": 4.0}}}

    def test_within_threshold_passes(self):
        assert perfbench.check_against_baseline(
            [_result("e8", 4.9)], self.BASELINE, threshold=0.25) == []

    def test_regression_fails(self):
        failures = perfbench.check_against_baseline(
            [_result("e8", 5.5)], self.BASELINE, threshold=0.25)
        assert len(failures) == 1
        assert "e8" in failures[0]

    def test_new_slice_does_not_fail_gate(self):
        assert perfbench.check_against_baseline(
            [_result("brand-new", 100.0)], self.BASELINE) == []

    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            perfbench.check_against_baseline([], self.BASELINE, threshold=0)


class TestSlices:

    def test_unknown_mode_and_slice_raise(self):
        with pytest.raises(ConfigurationError):
            perfbench.run_perfbench("nightly")
        with pytest.raises(ConfigurationError):
            perfbench.slice_points("smoke", "e99")

    def test_every_declared_slice_resolves_to_plan_points(self):
        for mode in ("smoke", "full"):
            for name in ("e2", "e8", "e13"):
                points = perfbench.slice_points(mode, name)
                assert points, (mode, name)

    def test_repeat_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            perfbench.time_slice("smoke", "e2", repeat=0)

    def test_real_micro_slice_times_and_checks(self):
        results = perfbench.run_perfbench("smoke", slices=["e13"], repeat=1)
        [result] = results
        assert result.name == "e13"
        assert result.wall_seconds > 0
        assert result.repeats == (result.wall_seconds,)
        entry = perfbench.trajectory_entry(results, "smoke", label="test")
        assert perfbench.check_against_baseline(results, entry) == []


class TestExtendedSlices:

    def test_registry_lists_scale_slices(self):
        rows = perfbench.list_slices()
        by_key = {(row["mode"], row["name"]): row for row in rows}
        assert by_key[("smoke", "e2")]["extended"] is False
        assert by_key[("full", "e2-100k")]["extended"] is True
        assert by_key[("full", "e2-100k")]["scale"] == {
            "shards": 4, "cohort_factor": 100}
        assert by_key[("full", "e2-1m")]["scale"] == {
            "shards": 8, "cohort_factor": 250}
        assert by_key[("smoke", "e2-100k")]["scale"] == {
            "shards": 4, "cohort_factor": 100}
        assert by_key[("full", "e2-10k")]["scale"] is None

    def test_duplicate_registration_rejected(self):
        existing = perfbench._EXTENDED_SLICES["full"]["e2-100k"]
        with pytest.raises(ConfigurationError):
            perfbench.register_extended_slice(existing)

    def test_extended_slices_resolve_to_points(self):
        for mode, name in (("full", "e2-10k"), ("full", "e2-100k"),
                           ("full", "e2-1m"), ("smoke", "e2-100k")):
            points = perfbench.slice_points(mode, name)
            assert points, (mode, name)

    def test_scale_tag_serialized_only_when_present(self):
        tagged = perfbench.SliceResult(
            "e2-100k", 1.0, (1.0,), 1,
            scale={"shards": 4, "cohort_factor": 100})
        assert tagged.to_dict()["scale"] == {
            "shards": 4, "cohort_factor": 100}
        assert "scale" not in _result("e2", 1.0).to_dict()

    def test_gate_skips_scale_mismatched_baselines(self):
        # A sharded measurement must never be gated against a
        # single-process reference (or vice versa).
        baseline = {"slices": {"e2-100k": {"wall_seconds": 1.0}}}
        sharded = perfbench.SliceResult(
            "e2-100k", 100.0, (100.0,), 1,
            scale={"shards": 4, "cohort_factor": 100})
        assert perfbench.check_against_baseline([sharded], baseline) == []
        matching = {"slices": {"e2-100k": {
            "wall_seconds": 1.0,
            "scale": {"shards": 4, "cohort_factor": 100}}}}
        failures = perfbench.check_against_baseline([sharded], matching)
        assert len(failures) == 1

    def test_memory_gate_skips_scale_mismatched_baselines(self):
        baseline = {"slices": {"e2-100k": {"traced_peak_bytes": 1000}}}
        sharded = perfbench.MemSliceResult(
            "e2-100k", 10_000_000, 20_000, 1,
            scale={"shards": 4, "cohort_factor": 100})
        assert perfbench.check_memory_against_baseline(
            [sharded], baseline) == []
        matching = {"slices": {"e2-100k": {
            "traced_peak_bytes": 1000,
            "scale": {"shards": 4, "cohort_factor": 100}}}}
        failures = perfbench.check_memory_against_baseline(
            [sharded], matching)
        assert len(failures) == 1

    def test_smoke_scale_slice_runs_end_to_end(self):
        results = perfbench.run_perfbench("smoke", slices=["e2-100k"])
        [result] = results
        assert result.name == "e2-100k"
        assert result.scale == {"shards": 4, "cohort_factor": 100}
        assert result.wall_seconds > 0
