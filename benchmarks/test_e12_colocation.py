"""E12 benchmark: batch-neighbor co-location and containment."""

from conftest import run_once

from repro.experiments import e12_colocation


def test_e12_colocation(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e12_colocation.run(settings))
    archive(result)
    by_config = {row["config"]: row for row in result.rows}
    alone = by_config["store alone"]
    shared = by_config["shared, both unpinned"]
    partitioned = by_config["partitioned (CCX-aware)"]
    # Shape: the unconstrained neighbor costs the store double digits;
    # CCX partitioning holds the loss well under the shared case while
    # the neighbor keeps (at least) its shared-mode progress.
    assert shared["store_vs_alone"] < 0.90
    assert partitioned["store_vs_alone"] > shared["store_vs_alone"] + 0.05
    assert (partitioned["neighbor_bursts_per_s"]
            > 0.8 * shared["neighbor_bursts_per_s"])
    assert shared["store_p99_ms"] > alone["store_p99_ms"]
