"""E9 benchmark: microarchitectural contrast vs SPEC-class kernels."""

from conftest import run_once

from repro.experiments import e9_characterization


def test_e9_characterization(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: e9_characterization.run(settings))
    archive(result)
    services = [r for r in result.rows if r["class"] == "microservice"]
    kernels = [r for r in result.rows if r["class"] == "spec-class"]

    def mean(rows, key):
        return sum(r[key] for r in rows) / len(rows)

    # Shape (the paper's contrast): microservices exhibit lower IPC,
    # far heavier L1i pressure, and a bigger front-end-bound share than
    # the workloads CPUs are designed against.
    assert mean(services, "ipc") < 0.7 * mean(kernels, "ipc")
    assert mean(services, "l1i_mpki") > 5 * mean(kernels, "l1i_mpki")
    assert (mean(services, "frontend_bound")
            > mean(kernels, "frontend_bound"))
    assert mean(services, "branch_mpki") > mean(kernels, "branch_mpki")
