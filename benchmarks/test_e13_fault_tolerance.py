"""E13 benchmark: fault tolerance under degraded replicas."""

from conftest import run_once

from repro.experiments import e13_fault_tolerance


def test_e13_fault_tolerance(benchmark, settings, archive):
    result = run_once(benchmark,
                      lambda: e13_fault_tolerance.run(settings))
    archive(result)
    cells = {(row["scenario"], row["resilience"]): row
             for row in result.rows}
    # Healthy cells are unaffected by which resilience mode is armed.
    for mode in ("none", "timeout", "full"):
        assert cells[("healthy", mode)]["error_rate_pct"] == 0.0
    # The headline claim: under an active fault, full resilience beats
    # no resilience on tail latency — strictly, same schedule and seed.
    for scenario in ("slow", "pause"):
        unprotected = cells[(scenario, "none")]["p99_ms"]
        protected = cells[(scenario, "full")]["p99_ms"]
        assert protected < unprotected, scenario
    # Retries stay inside the budget (amplification cap 1 + 0.25).
    for row in result.rows:
        assert row["retry_amp"] <= 1.25 + 1e-9
    # Breakers actually engaged somewhere in the faulted cells.
    assert any(row["breaker_opens"] > 0 for row in result.rows
               if row["resilience"] == "full")
