"""E3 benchmark: throughput vs logical CPUs enabled."""

from conftest import run_once

from repro.experiments import e3_core_scaling


def test_e3_core_scaling(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e3_core_scaling.run(settings))
    archive(result)
    speedups = result.column("speedup")
    efficiencies = result.column("efficiency")
    # Shape: more CPUs → more throughput, but with falling efficiency
    # (the paper's motivation: scale-up is far from free).
    assert all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 2.0
    assert efficiencies[-1] < 0.85
    assert efficiencies[-1] < efficiencies[0]
