"""Shared fixtures for the benchmark suite.

Every benchmark runs its experiment once (``rounds=1``) at paper scale,
asserts the paper's qualitative shape, and archives the rendered table
under ``benchmarks/output/`` so EXPERIMENTS.md entries are regenerable.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.common import ExperimentResult

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Paper-scale settings shared by all benchmarks."""
    return ExperimentSettings.full(seed=1)


@pytest.fixture()
def archive():
    """Write an experiment's rendered table next to the benchmarks."""
    def write(result: ExperimentResult) -> ExperimentResult:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{result.experiment.lower()}.txt"
        path.write_text(result.render() + "\n")
        return result
    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
