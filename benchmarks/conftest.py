"""Shared fixtures for the benchmark suite.

Every benchmark runs its experiment once (``rounds=1``) at paper scale,
asserts the paper's qualitative shape, and archives the rendered table
under ``benchmarks/output/`` so EXPERIMENTS.md entries are regenerable.

The ``orchestrate`` fixture routes an experiment through
``repro.orchestrator.run_sweep`` with a benchmark-local cache, so repeat
benchmark runs replay unchanged experiments from ``benchmarks/.cache/``
instead of recomputing them.  Set ``REPRO_BENCH_JOBS`` to fan points out
across worker processes (sweeps are byte-identical at any job count).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.common import ExperimentResult

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
CACHE_DIR = pathlib.Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Paper-scale settings shared by all benchmarks."""
    return ExperimentSettings.full(seed=1)


@pytest.fixture()
def archive():
    """Write an experiment's rendered table next to the benchmarks."""
    def write(result: ExperimentResult) -> ExperimentResult:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{result.experiment.lower()}.txt"
        path.write_text(result.render() + "\n")
        return result
    return write


@pytest.fixture(scope="session")
def orchestrate():
    """Run an experiment through the sweep orchestrator, cached.

    ``orchestrate("e2", settings)`` is render-identical to the module's
    ``run(settings)`` but fans sweep points across ``REPRO_BENCH_JOBS``
    worker processes (default: in-process) and caches point payloads
    under ``benchmarks/.cache/``.
    """
    from repro.orchestrator import ResultCache, run_sweep

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = ResultCache(CACHE_DIR)

    def sweep(experiment_id: str,
              settings: ExperimentSettings) -> ExperimentResult:
        return run_sweep(experiment_id, settings,
                         jobs=jobs, cache=cache).result
    return sweep


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
