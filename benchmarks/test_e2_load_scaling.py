"""E2 benchmark: throughput & latency vs concurrent users."""

from conftest import run_once

from repro.experiments import e2_load_scaling


def test_e2_load_scaling(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e2_load_scaling.run(settings))
    archive(result)
    throughputs = result.column("throughput_rps")
    latencies = result.column("latency_p99_ms")
    # Shape: throughput grows with offered load, then saturates...
    assert throughputs[1] > throughputs[0] * 1.5
    peak = max(throughputs)
    assert throughputs[-1] > 0.85 * peak
    # ...while saturated latency is far above light-load latency.
    assert latencies[-1] > 3 * latencies[0]
