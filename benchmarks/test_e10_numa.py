"""E10 benchmark: NUMA locality effects (two-socket machine)."""

import dataclasses

from conftest import run_once

from repro.experiments import e10_numa


def test_e10_numa(benchmark, settings, archive):
    two_socket = dataclasses.replace(settings, preset="rome-2s")
    result = run_once(benchmark, lambda: e10_numa.run(two_socket))
    archive(result)
    by_config = {row["config"]: row for row in result.rows}
    local = by_config["socket0 + local memory"]
    remote = by_config["socket0 + remote memory"]
    spread = by_config["node-spread + local"]
    # Shape: remote memory on identical compute costs real throughput
    # and latency; spreading across both sockets with local memory is
    # at least as good as packing one socket.
    assert remote["throughput_rps"] < 0.97 * local["throughput_rps"]
    assert remote["latency_mean_ms"] > local["latency_mean_ms"]
    assert spread["throughput_rps"] > 0.95 * local["throughput_rps"]
