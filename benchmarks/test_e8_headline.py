"""E8 benchmark: the headline +22% throughput / −18% latency claim."""

from conftest import run_once

from repro.experiments import e8_headline


def test_e8_headline(benchmark, settings, archive):
    outcome = run_once(benchmark,
                       lambda: e8_headline.measure(settings))
    archive(e8_headline.run(settings))
    # Paper: +22% throughput, −18% latency over the tuned baseline.
    # The reproduction must land in the same band: a double-digit
    # throughput uplift with a matching latency reduction.
    assert 0.12 <= outcome.throughput_uplift <= 0.45, (
        f"uplift {outcome.throughput_uplift:.3f} outside the paper band")
    assert 0.10 <= outcome.mean_latency_reduction <= 0.45, (
        f"latency reduction {outcome.mean_latency_reduction:.3f} "
        f"outside the paper band")
    # The optimized configuration must not sacrifice tail latency badly.
    assert outcome.p99_latency_reduction > -0.10
    # Scaling-aware sizing keeps the database singular.
    assert outcome.allocation.replica_counts()["db"] == 1
