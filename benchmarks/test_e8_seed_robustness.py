"""E8 robustness: the headline band must hold across seeds.

Methodology benchmark: repeats the headline measurement with independent
seeds and summarizes uplift with mean ± CI and the harmonic-mean speedup
(the correct summary for throughput ratios).
"""

import dataclasses

from conftest import OUTPUT_DIR, run_once

from repro.experiments import e8_headline
from repro.metrics import confidence_interval
from repro.metrics.stats import harmonic_mean

SEEDS = (1, 2, 3)


def test_e8_headline_across_seeds(benchmark, settings):
    def measure_all():
        outcomes = []
        for seed in SEEDS:
            seeded = dataclasses.replace(settings, seed=seed)
            outcomes.append(e8_headline.measure(seeded))
        return outcomes

    outcomes = run_once(benchmark, measure_all)
    uplifts = [o.throughput_uplift for o in outcomes]
    latency_cuts = [o.mean_latency_reduction for o in outcomes]
    summary = confidence_interval([1.0 + u for u in uplifts])
    hmean_speedup = harmonic_mean([1.0 + u for u in uplifts])

    OUTPUT_DIR.mkdir(exist_ok=True)
    lines = ["[E8-seeds] Headline across seeds"]
    for seed, outcome in zip(SEEDS, outcomes):
        lines.append(
            f"  seed {seed}: uplift {outcome.throughput_uplift * 100:+.1f}%"
            f", mean latency {-outcome.mean_latency_reduction * 100:+.1f}%")
    lines.append(f"  speedup: {summary} | harmonic mean "
                 f"{hmean_speedup:.3f}")
    (OUTPUT_DIR / "e8_seeds.txt").write_text("\n".join(lines) + "\n")

    # Every seed individually lands in the paper band.
    for uplift, latency_cut in zip(uplifts, latency_cuts):
        assert 0.12 <= uplift <= 0.45
        assert 0.10 <= latency_cut <= 0.45
    # And the cross-seed summary is tight (the result is not seed luck).
    assert summary.ci_half_width < 0.08
    assert 1.12 <= hmean_speedup <= 1.45
