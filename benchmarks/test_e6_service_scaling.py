"""E6 benchmark: per-service scale-up curves."""

from conftest import run_once

from repro.experiments import e6_service_scaling


def test_e6_service_scaling(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e6_service_scaling.run(settings))
    archive(result)

    def gain(service):
        points = [r for r in result.rows if r["service"] == service]
        return points[-1]["throughput_rps"] / points[0]["throughput_rps"]

    # Shape: services scale very differently — the paper's core argument
    # for sizing them individually.
    assert gain("webui") > 1.6          # keeps converting CPUs
    assert gain("auth") < gain("webui")  # light service saturates load
    assert gain("persistence") < gain("webui")  # capped by the DB behind it
    assert any("USL" in note for note in result.notes)
