"""E5 benchmark: per-service CPU utilization breakdown."""

from conftest import run_once

from repro.experiments import e5_utilization


def test_e5_utilization(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e5_utilization.run(settings))
    archive(result)
    shares = {row["service"]: row["cpu_share_pct"] for row in result.rows}
    # Shape (paper's breakdown): WebUI dominates; Auth and Recommender
    # are light; the database is a mid-weight consumer.
    assert shares["webui"] == max(shares.values())
    assert shares["webui"] > 25.0
    assert shares["auth"] < 15.0
    assert shares["recommender"] < 15.0
    assert 5.0 < shares["db"] < 35.0
    assert abs(sum(shares.values()) - 100.0) < 1e-6
