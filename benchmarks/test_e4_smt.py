"""E4 benchmark: SMT on/off sensitivity."""

from conftest import run_once

from repro.experiments import e4_smt


def test_e4_smt(benchmark, settings, archive):
    result = run_once(
        benchmark,
        lambda: e4_smt.run(settings, smt_yields=(1.15, 1.3, 1.45)))
    archive(result)
    uplifts = result.column("uplift_vs_smt_off")
    # Shape: SMT-on beats SMT-off on the same cores, and the benefit
    # grows with the modelled SMT yield.
    assert uplifts[0] == 1.0
    assert all(u > 1.02 for u in uplifts[1:])
    assert uplifts[-1] > uplifts[1]
