"""E1 benchmark: platform configuration table."""

from conftest import run_once

from repro.experiments import e1_platform


def test_e1_platform(benchmark, settings, archive):
    result = run_once(benchmark, lambda: e1_platform.run(settings))
    archive(result)
    by_attribute = {row["attribute"]: row["value"] for row in result.rows}
    # The paper's platform: 128 logical CPUs per socket.
    assert by_attribute["logical_cpus_per_socket"] == 128
    assert by_attribute["ccxs_l3_domains"] == 16
    assert by_attribute["smt_ways"] == 2
